#include "numeric/ode.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "numeric/lu.h"
#include "numeric/step_control.h"

namespace lcosc {
namespace {

// Advance one classic RK4 step of size h from (t, x) into x_out.
// k1..k4 and scratch are preallocated work vectors.
void rk4_step(const OdeRhs& rhs, double t, const Vector& x, double h, Vector& x_out, Vector& k1,
              Vector& k2, Vector& k3, Vector& k4, Vector& scratch) {
  const std::size_t n = x.size();
  rhs(t, x, k1);
  for (std::size_t i = 0; i < n; ++i) scratch[i] = x[i] + 0.5 * h * k1[i];
  rhs(t + 0.5 * h, scratch, k2);
  for (std::size_t i = 0; i < n; ++i) scratch[i] = x[i] + 0.5 * h * k2[i];
  rhs(t + 0.5 * h, scratch, k3);
  for (std::size_t i = 0; i < n; ++i) scratch[i] = x[i] + h * k3[i];
  rhs(t + h, scratch, k4);
  for (std::size_t i = 0; i < n; ++i) {
    x_out[i] = x[i] + (h / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

}  // namespace

OdeResult integrate_rk4(const OdeRhs& rhs, double t0, double t1, Vector x0,
                        const Rk4Options& options, const OdeObserver& observer) {
  LCOSC_REQUIRE(options.step > 0.0, "RK4 step must be positive");
  LCOSC_REQUIRE(t1 >= t0, "integration interval must be forward in time");
  const std::size_t n = x0.size();

  OdeResult result;
  result.state = std::move(x0);
  Vector k1(n), k2(n), k3(n), k4(n), scratch(n), next(n);

  double t = t0;
  if (observer && !observer(t, result.state)) {
    result.t_end = t;
    return result;
  }

  while (t < t1) {
    const double h = std::min(options.step, t1 - t);
    rk4_step(rhs, t, result.state, h, next, k1, k2, k3, k4, scratch);
    result.state.swap(next);
    t += h;
    ++result.steps_taken;
    if (observer && !observer(t, result.state)) break;
  }
  result.t_end = t;
  return result;
}

OdeResult integrate_rkf45(const OdeRhs& rhs, double t0, double t1, Vector x0,
                          const Rkf45Options& options, const OdeObserver& observer) {
  LCOSC_REQUIRE(options.initial_step > 0.0, "initial step must be positive");
  LCOSC_REQUIRE(t1 >= t0, "integration interval must be forward in time");
  const std::size_t n = x0.size();

  // Fehlberg coefficients.
  static constexpr double a2 = 1.0 / 4.0;
  static constexpr double b31 = 3.0 / 32.0, b32 = 9.0 / 32.0;
  static constexpr double b41 = 1932.0 / 2197.0, b42 = -7200.0 / 2197.0, b43 = 7296.0 / 2197.0;
  static constexpr double b51 = 439.0 / 216.0, b52 = -8.0, b53 = 3680.0 / 513.0,
                          b54 = -845.0 / 4104.0;
  static constexpr double b61 = -8.0 / 27.0, b62 = 2.0, b63 = -3544.0 / 2565.0,
                          b64 = 1859.0 / 4104.0, b65 = -11.0 / 40.0;
  // 5th order solution weights.
  static constexpr double c1 = 16.0 / 135.0, c3 = 6656.0 / 12825.0, c4 = 28561.0 / 56430.0,
                          c5 = -9.0 / 50.0, c6 = 2.0 / 55.0;
  // Error weights (5th - 4th).
  static constexpr double e1 = 16.0 / 135.0 - 25.0 / 216.0;
  static constexpr double e3 = 6656.0 / 12825.0 - 1408.0 / 2565.0;
  static constexpr double e4 = 28561.0 / 56430.0 - 2197.0 / 4104.0;
  static constexpr double e5 = -9.0 / 50.0 + 1.0 / 5.0;
  static constexpr double e6 = 2.0 / 55.0;

  OdeResult result;
  result.state = std::move(x0);
  Vector k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), scratch(n), next(n);

  double t = t0;
  double h = options.initial_step;
  if (observer && !observer(t, result.state)) {
    result.t_end = t;
    return result;
  }

  while (t < t1 && result.steps_taken + result.steps_rejected < options.max_steps) {
    h = std::clamp(h, options.min_step, options.max_step);
    h = std::min(h, t1 - t);

    const Vector& x = result.state;
    rhs(t, x, k1);
    for (std::size_t i = 0; i < n; ++i) scratch[i] = x[i] + h * a2 * k1[i];
    rhs(t + h / 4.0, scratch, k2);
    for (std::size_t i = 0; i < n; ++i) scratch[i] = x[i] + h * (b31 * k1[i] + b32 * k2[i]);
    rhs(t + 3.0 * h / 8.0, scratch, k3);
    for (std::size_t i = 0; i < n; ++i)
      scratch[i] = x[i] + h * (b41 * k1[i] + b42 * k2[i] + b43 * k3[i]);
    rhs(t + 12.0 * h / 13.0, scratch, k4);
    for (std::size_t i = 0; i < n; ++i)
      scratch[i] = x[i] + h * (b51 * k1[i] + b52 * k2[i] + b53 * k3[i] + b54 * k4[i]);
    rhs(t + h, scratch, k5);
    for (std::size_t i = 0; i < n; ++i)
      scratch[i] = x[i] + h * (b61 * k1[i] + b62 * k2[i] + b63 * k3[i] + b64 * k4[i] + b65 * k5[i]);
    rhs(t + h / 2.0, scratch, k6);

    // Error estimate and tolerance scaling.
    double error_ratio = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double err =
          h * (e1 * k1[i] + e3 * k3[i] + e4 * k4[i] + e5 * k5[i] + e6 * k6[i]);
      const double tol = options.abs_tolerance + options.rel_tolerance * std::abs(x[i]);
      error_ratio = std::max(error_ratio, std::abs(err) / tol);
    }

    if (error_ratio <= 1.0 || h <= options.min_step * (1.0 + 1e-12)) {
      for (std::size_t i = 0; i < n; ++i) {
        next[i] = x[i] + h * (c1 * k1[i] + c3 * k3[i] + c4 * k4[i] + c5 * k5[i] + c6 * k6[i]);
      }
      result.state.swap(next);
      t += h;
      ++result.steps_taken;
      if (observer && !observer(t, result.state)) break;
    } else {
      ++result.steps_rejected;
    }

    // Standard step-size controller with safety factor.
    const double factor =
        (error_ratio > 0.0) ? 0.9 * std::pow(error_ratio, -0.2) : 5.0;
    h *= std::clamp(factor, 0.2, 5.0);
  }
  result.t_end = t;
  return result;
}

namespace {

// One trapezoidal step from (t, x) with rhs value f_old at x: predictor
// (forward Euler) plus Newton corrector, writing the new state into
// x_out and the rhs at x_out into f_out.  Shared verbatim by the fixed
// loop and the adaptive step-doubling trials so both paths perform the
// identical floating-point sequence per step.
class TrapezoidalStepper {
 public:
  TrapezoidalStepper(const OdeRhs& rhs, const TrapezoidalOptions& options, std::size_t n)
      : rhs_(rhs),
        options_(options),
        n_(n),
        guess_(n),
        residual_(n),
        f_pert_(n),
        delta_x_(n),
        jac_(n, n) {}

  void step(double t, const Vector& x, double h, const Vector& f_old, Vector& x_out,
            Vector& f_out) {
    // Predictor: forward Euler.
    for (std::size_t i = 0; i < n_; ++i) guess_[i] = x[i] + h * f_old[i];

    // Corrector: Newton on G(y) = y - x - h/2 (f_old + f(y)) with a
    // finite-difference Jacobian.  Newton (rather than fixed-point
    // iteration) keeps the corrector convergent for stiff systems where
    // |h * df/dy| >> 1 -- which is the reason to use an A-stable rule.
    for (int it = 0; it < options_.max_corrector_iterations; ++it) {
      rhs_(t + h, guess_, f_out);
      double res_norm = 0.0;
      for (std::size_t i = 0; i < n_; ++i) {
        residual_[i] = guess_[i] - x[i] - 0.5 * h * (f_old[i] + f_out[i]);
        res_norm = std::max(res_norm, std::abs(residual_[i]));
      }
      if (res_norm <= options_.corrector_tolerance) break;

      // J = I - h/2 * df/dy (forward differences, column by column).
      for (std::size_t j = 0; j < n_; ++j) {
        const double eps = 1e-8 * (1.0 + std::abs(guess_[j]));
        const double saved = guess_[j];
        guess_[j] += eps;
        rhs_(t + h, guess_, f_pert_);
        guess_[j] = saved;
        for (std::size_t i = 0; i < n_; ++i) {
          jac_(i, j) = (i == j ? 1.0 : 0.0) - 0.5 * h * (f_pert_[i] - f_out[i]) / eps;
        }
      }
      const LuDecomposition lu(jac_);
      if (!lu.try_solve(residual_, delta_x_)) break;
      for (std::size_t i = 0; i < n_; ++i) guess_[i] -= delta_x_[i];
    }

    rhs_(t + h, guess_, f_out);
    x_out = guess_;
  }

 private:
  const OdeRhs& rhs_;
  const TrapezoidalOptions& options_;
  std::size_t n_;
  Vector guess_, residual_, f_pert_, delta_x_;
  Matrix jac_;
};

OdeResult integrate_trapezoidal_adaptive(const OdeRhs& rhs, double t0, double t1, Vector x0,
                                         const TrapezoidalOptions& options,
                                         const OdeObserver& observer) {
  const std::size_t n = x0.size();
  OdeResult result;
  result.state = std::move(x0);
  TrapezoidalStepper stepper(rhs, options, n);
  Vector f_old(n), f_full(n), f_mid(n), f_half(n);
  Vector x_full(n), x_mid(n), x_half(n);

  const double h_min = options.min_step > 0.0 ? options.min_step : options.step / 4096.0;
  const double h_max_raw = options.max_step > 0.0 ? options.max_step : 64.0 * options.step;
  LCOSC_REQUIRE(h_min <= h_max_raw, "trapezoidal min_step must not exceed max_step");
  const StepGrid grid(options.step_grid_per_octave);
  // Quantizing rounds the ceiling down; never let it cross the floor.
  const double h_max = std::max(grid.quantize(h_max_raw), h_min);
  StepControlOptions sc;
  sc.order = 2;  // trapezoidal rule
  PiStepController controller(sc);

  auto clamp_to_grid = [&](double h) {
    h = std::clamp(h, h_min, h_max);
    const double q = grid.quantize(h);
    return q >= h_min ? q : h_min;
  };

  double t = t0;
  if (observer && !observer(t, result.state)) {
    result.t_end = t;
    return result;
  }
  rhs(t, result.state, f_old);
  double h = clamp_to_grid(std::min(options.step, std::max(t1 - t0, h_min)));
  const double time_eps = options.step * 1e-9;
  while (t1 - t > time_eps) {
    const double h_try = std::min(h, t1 - t);
    const Vector& x = result.state;

    // Step doubling: one step of h_try against two of h_try / 2; the
    // Richardson difference over 2^p - 1 = 3 bounds the half-step LTE.
    stepper.step(t, x, h_try, f_old, x_full, f_full);
    stepper.step(t, x, 0.5 * h_try, f_old, x_mid, f_mid);
    stepper.step(t + 0.5 * h_try, x_mid, 0.5 * h_try, f_mid, x_half, f_half);

    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double lte = (x_half[i] - x_full[i]) / 3.0;
      const double scale =
          options.abs_tolerance +
          options.rel_tolerance * std::max(std::abs(x[i]), std::abs(x_half[i]));
      err = std::max(err, std::abs(lte) / scale);
    }
    if (!std::isfinite(err)) err = std::numeric_limits<double>::infinity();

    const bool at_floor = h_try <= h_min * (1.0 + 1e-12);
    if (err > 1.0 && !at_floor) {
      ++result.steps_rejected;
      h = clamp_to_grid(h_try * controller.propose_factor(err, false));
      continue;
    }

    result.state = x_half;
    f_old = f_half;
    t += h_try;
    ++result.steps_taken;
    if (observer && !observer(t, result.state)) break;
    h = clamp_to_grid(h_try * controller.propose_factor(err, true));
  }
  result.t_end = t;
  return result;
}

}  // namespace

OdeResult integrate_trapezoidal(const OdeRhs& rhs, double t0, double t1, Vector x0,
                                const TrapezoidalOptions& options, const OdeObserver& observer) {
  LCOSC_REQUIRE(options.step > 0.0, "trapezoidal step must be positive");
  LCOSC_REQUIRE(t1 >= t0, "integration interval must be forward in time");
  if (options.adaptive) {
    return integrate_trapezoidal_adaptive(rhs, t0, t1, std::move(x0), options, observer);
  }
  const std::size_t n = x0.size();

  OdeResult result;
  result.state = std::move(x0);
  TrapezoidalStepper stepper(rhs, options, n);
  Vector f_old(n), f_new(n), x_new(n);

  double t = t0;
  if (observer && !observer(t, result.state)) {
    result.t_end = t;
    return result;
  }

  rhs(t, result.state, f_old);
  while (t < t1) {
    const double h = std::min(options.step, t1 - t);
    stepper.step(t, result.state, h, f_old, x_new, f_new);
    result.state = x_new;
    f_old = f_new;
    t += h;
    ++result.steps_taken;
    if (observer && !observer(t, result.state)) break;
  }
  result.t_end = t;
  return result;
}

}  // namespace lcosc
