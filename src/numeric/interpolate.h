// Piecewise-linear interpolation tables.
//
// Used in two roles: (1) representing extracted I-V characteristics (the
// Fig. 17 curve of the unsupplied driver becomes a nonlinear load in the
// dual-system model) and (2) the PWL approximation analysis of the
// exponential DAC.
#pragma once

#include <utility>
#include <vector>

namespace lcosc {

// Monotone-x piecewise linear function with linear extrapolation at the
// ends.  Immutable after construction.
class PwlTable {
 public:
  PwlTable() = default;
  // Points must be sorted by strictly increasing x (throws ConfigError
  // otherwise); at least two points are required.
  explicit PwlTable(std::vector<std::pair<double, double>> points);

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const { return points_; }

  // Evaluate with linear extrapolation outside the table range.
  [[nodiscard]] double operator()(double x) const;

  // Derivative of the active segment (left-continuous at break points).
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] double min_x() const { return points_.front().first; }
  [[nodiscard]] double max_x() const { return points_.back().first; }

 private:
  std::vector<std::pair<double, double>> points_;
};

// Linear interpolation between two scalars.
[[nodiscard]] constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

// Dense-output sampler over an irregularly spaced abscissa: linear
// interpolation between knots with CLAMPED (not extrapolated) ends.
//
// The adaptive transient engines accept internal steps wherever the LTE
// controller lands them and then resample the solution onto the caller's
// fixed output grid through this class.  Semantics the dense-output path
// relies on (and tests pin down):
//   - evaluation at a knot abscissa returns exactly the stored ordinate
//     (accepted solver states pass through the resampling bit-for-bit);
//   - evaluation outside [front, back] clamps to the end ordinates (the
//     output grid's last point may sit an ulp past the last accepted
//     step);
//   - a single-knot table is the constant function (a run that ends on
//     its first accepted step is still sampleable);
//   - an empty table cannot be evaluated (ConfigError);
//   - a non-strictly-increasing abscissa is rejected at append time
//     (ConfigError), never silently reordered.
class SampledCurve {
 public:
  SampledCurve() = default;

  void reserve(std::size_t n);
  // Append a knot; x must be strictly greater than the previous knot's.
  void append(double x, double y);
  void clear();

  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] double front_x() const;
  [[nodiscard]] double back_x() const;

  // Clamped piecewise-linear evaluation (see the contract above).
  [[nodiscard]] double operator()(double x) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace lcosc
