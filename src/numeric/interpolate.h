// Piecewise-linear interpolation tables.
//
// Used in two roles: (1) representing extracted I-V characteristics (the
// Fig. 17 curve of the unsupplied driver becomes a nonlinear load in the
// dual-system model) and (2) the PWL approximation analysis of the
// exponential DAC.
#pragma once

#include <utility>
#include <vector>

namespace lcosc {

// Monotone-x piecewise linear function with linear extrapolation at the
// ends.  Immutable after construction.
class PwlTable {
 public:
  PwlTable() = default;
  // Points must be sorted by strictly increasing x (throws ConfigError
  // otherwise); at least two points are required.
  explicit PwlTable(std::vector<std::pair<double, double>> points);

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const { return points_; }

  // Evaluate with linear extrapolation outside the table range.
  [[nodiscard]] double operator()(double x) const;

  // Derivative of the active segment (left-continuous at break points).
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] double min_x() const { return points_.front().first; }
  [[nodiscard]] double max_x() const { return points_.back().first; }

 private:
  std::vector<std::pair<double, double>> points_;
};

// Linear interpolation between two scalars.
[[nodiscard]] constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace lcosc
