#include "numeric/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lcosc {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    LCOSC_REQUIRE(row.size() == cols_, "all matrix rows must have equal width");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  LCOSC_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  LCOSC_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

void Matrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Vector Matrix::multiply(const Vector& x) const {
  LCOSC_REQUIRE(x.size() == cols_, "matrix-vector size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  LCOSC_REQUIRE(other.rows() == cols_, "matrix-matrix size mismatch");
  Matrix y(rows_, other.cols());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols(); ++c) y(r, c) += a * other(k, c);
    }
  }
  return y;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double norm2(const Vector& v) {
  double acc = 0.0;
  for (const double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (const double x : v) m = std::max(m, std::abs(x));
  return m;
}

Vector subtract(const Vector& a, const Vector& b) {
  LCOSC_REQUIRE(a.size() == b.size(), "vector size mismatch");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

Vector add_scaled(const Vector& a, double s, const Vector& b) {
  LCOSC_REQUIRE(a.size() == b.size(), "vector size mismatch");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + s * b[i];
  return r;
}

double dot(const Vector& a, const Vector& b) {
  LCOSC_REQUIRE(a.size() == b.size(), "vector size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace lcosc
