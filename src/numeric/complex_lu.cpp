#include "numeric/complex_lu.h"

#include <cmath>

#include "common/error.h"

namespace lcosc {

ComplexMatrix::ComplexMatrix(std::size_t rows, std::size_t cols, Complex fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void ComplexMatrix::set_zero() {
  for (auto& v : data_) v = Complex{};
}

ComplexVector ComplexMatrix::multiply(const ComplexVector& x) const {
  LCOSC_REQUIRE(x.size() == cols_, "complex matrix-vector size mismatch");
  ComplexVector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc{};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

ComplexLu::ComplexLu(ComplexMatrix a) : lu_(std::move(a)) {
  LCOSC_REQUIRE(lu_.rows() == lu_.cols(), "complex LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
    }
    const Complex pivot = lu_(k, k);
    if (std::abs(pivot) < 1e-300) {
      singular_ = true;
      return;
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;
      if (factor == Complex{}) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

bool ComplexLu::try_solve(const ComplexVector& b, ComplexVector& x) const {
  if (singular_) return false;
  const std::size_t n = lu_.rows();
  LCOSC_REQUIRE(b.size() == n, "rhs size mismatch");
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    Complex acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return true;
}

ComplexVector ComplexLu::solve(const ComplexVector& b) const {
  ComplexVector x;
  if (!try_solve(b, x)) throw ConvergenceError("complex LU solve on a singular matrix");
  return x;
}

ComplexVector solve_complex_system(ComplexMatrix a, const ComplexVector& b) {
  const ComplexLu lu(std::move(a));
  return lu.solve(b);
}

}  // namespace lcosc
