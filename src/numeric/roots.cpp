#include "numeric/roots.h"

#include <cmath>

#include "common/error.h"

namespace lcosc {

double bisect_root(const ScalarFunction& f, double lo, double hi, const RootOptions& options) {
  LCOSC_REQUIRE(lo < hi, "bisection interval must be ordered");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  LCOSC_REQUIRE(std::signbit(flo) != std::signbit(fhi), "bisection requires a sign change");

  for (int it = 0; it < options.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (std::abs(fmid) <= options.f_tolerance || (hi - lo) <= options.x_tolerance) return mid;
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
      fhi = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

double brent_root(const ScalarFunction& f, double lo, double hi, const RootOptions& options) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  LCOSC_REQUIRE(std::signbit(fa) != std::signbit(fb), "Brent requires a sign change");

  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;

  for (int it = 0; it < options.max_iterations; ++it) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * 1e-16 * std::abs(b) + 0.5 * options.x_tolerance;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0 || std::abs(fb) <= options.f_tolerance) return b;

    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt interpolation.
      const double s = fb / fa;
      double p = 0.0;
      double q = 0.0;
      if (a == c) {
        // Secant.
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        // Inverse quadratic.
        const double qa = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qa * (qa - r) - (b - a) * (r - 1.0));
        q = (qa - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }

    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if (std::signbit(fb) == std::signbit(fc)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  return b;
}

double bisect_threshold(const ScalarPredicate& pred, double lo, double hi, double x_tolerance,
                        int max_iterations) {
  LCOSC_REQUIRE(lo < hi, "threshold interval must be ordered");
  LCOSC_REQUIRE(!pred(lo), "predicate must be false at the lower bound");
  LCOSC_REQUIRE(pred(hi), "predicate must be true at the upper bound");
  for (int it = 0; it < max_iterations && (hi - lo) > x_tolerance; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (pred(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double golden_section_minimize(const ScalarFunction& f, double lo, double hi,
                               double x_tolerance) {
  LCOSC_REQUIRE(lo < hi, "minimization interval must be ordered");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  while ((b - a) > x_tolerance) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace lcosc
