// Damped Newton-Raphson for nonlinear systems F(x) = 0.
//
// The MNA DC solver supplies F and its Jacobian through the callback; this
// module owns the iteration policy: full steps while they shrink the
// residual, geometric damping otherwise, and a configurable per-variable
// step clamp that keeps exponential diode models from overflowing.
#pragma once

#include <functional>

#include "numeric/matrix.h"

namespace lcosc {

struct NewtonOptions {
  int max_iterations = 200;
  // Convergence on the residual infinity norm...
  double residual_tolerance = 1e-9;
  // ...or on the update infinity norm (both must hold).
  double step_tolerance = 1e-12;
  // Hard clamp on each component of the Newton update (0 disables).
  double max_step = 0.0;
  // Damping factor applied when a full step increases the residual.
  double damping_factor = 0.5;
  int max_damping_steps = 12;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
  Vector solution;
};

// Evaluate the residual F(x) into `f` and the Jacobian dF/dx into `jac`.
// Sizes are preallocated by the solver.
using NewtonSystem = std::function<void(const Vector& x, Vector& f, Matrix& jac)>;

// Run damped Newton from `initial_guess`.  Never throws on non-convergence;
// inspect `converged` (DC solvers retry with continuation strategies).
[[nodiscard]] NewtonResult solve_newton(const NewtonSystem& system, Vector initial_guess,
                                        const NewtonOptions& options = {});

}  // namespace lcosc
