#include "numeric/newton.h"

#include <cmath>

#include "common/error.h"
#include "numeric/lu.h"

namespace lcosc {

NewtonResult solve_newton(const NewtonSystem& system, Vector initial_guess,
                          const NewtonOptions& options) {
  LCOSC_REQUIRE(options.max_iterations > 0, "max_iterations must be positive");
  const std::size_t n = initial_guess.size();

  NewtonResult result;
  result.solution = std::move(initial_guess);

  Vector f(n);
  Matrix jac(n, n);
  Vector trial(n);
  Vector f_trial(n);
  Matrix jac_scratch(n, n);

  system(result.solution, f, jac);
  double residual = norm_inf(f);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (residual <= options.residual_tolerance) {
      result.converged = true;
      break;
    }

    LuDecomposition lu(jac);
    Vector step;
    if (!lu.try_solve(f, step)) {
      // Singular Jacobian: regularize the diagonal and retry once.
      jac_scratch = jac;
      for (std::size_t i = 0; i < n; ++i) jac_scratch(i, i) += 1e-9;
      LuDecomposition lu2(jac_scratch);
      if (!lu2.try_solve(f, step)) break;
    }

    // Clamp the per-component update to keep exponentials in range.
    if (options.max_step > 0.0) {
      for (double& s : step) {
        if (s > options.max_step) s = options.max_step;
        if (s < -options.max_step) s = -options.max_step;
      }
    }

    // Damped line search on the residual norm.
    double lambda = 1.0;
    bool accepted = false;
    for (int d = 0; d <= options.max_damping_steps; ++d) {
      for (std::size_t i = 0; i < n; ++i) trial[i] = result.solution[i] - lambda * step[i];
      system(trial, f_trial, jac_scratch);
      const double trial_residual = norm_inf(f_trial);
      if (std::isfinite(trial_residual) &&
          (trial_residual < residual || trial_residual <= options.residual_tolerance)) {
        result.solution = trial;
        f = f_trial;
        jac = jac_scratch;
        residual = trial_residual;
        accepted = true;
        break;
      }
      lambda *= options.damping_factor;
    }

    if (!accepted) {
      // Accept the most damped step anyway if it is finite; a plateau in
      // the residual can still be escaped on the next iteration because the
      // Jacobian changes.  Otherwise give up.
      const double trial_residual = norm_inf(f_trial);
      if (std::isfinite(trial_residual)) {
        result.solution = trial;
        f = f_trial;
        jac = jac_scratch;
        residual = trial_residual;
      } else {
        break;
      }
    }

    const double step_norm = lambda * norm_inf(step);
    if (residual <= options.residual_tolerance && step_norm <= options.step_tolerance) {
      result.converged = true;
      break;
    }
    if (step_norm <= options.step_tolerance && residual <= 1e3 * options.residual_tolerance) {
      // Stagnated essentially at the solution.
      result.converged = true;
      break;
    }
  }

  if (!result.converged && residual <= options.residual_tolerance) result.converged = true;
  result.residual_norm = residual;
  return result;
}

}  // namespace lcosc
