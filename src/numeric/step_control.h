// Shared machinery for local-truncation-error-controlled adaptive time
// stepping: a PI step-size controller and a power-of-two geometric step
// grid.
//
// Every adaptive engine in the tree (the spice transient solver, the
// envelope simulator, the implicit ODE integrator) estimates its LTE by
// step doubling -- advance once with h and twice with h/2 from the same
// state, so the Richardson difference bounds the error of the half-step
// solution -- and feeds the scaled error ratio into one of these
// controllers.  Centralizing the controller keeps the accept/reject
// policy and the (well-tested) growth clamps identical across engines.
#pragma once

#include <cstddef>

namespace lcosc {

struct StepControlOptions {
  // Order of the underlying method (BE = 1, trapezoidal = 2).  The
  // controller exponents scale with 1/(order + 1) because the LTE of a
  // method of order p behaves like h^(p+1).
  int order = 1;
  // Multiplied into every proposal so the next step does not sit exactly
  // on the acceptance boundary.
  double safety = 0.9;
  // Clamp on the per-step growth/shrink factor.  The lower clamp bounds
  // the rework after a badly failed step; the upper clamp stops the
  // controller from leaping over a smooth region straight into the next
  // transient.
  double min_factor = 0.2;
  double max_factor = 4.0;
  // PI gains (Gustafsson): proposal ~ err^-kI * err_prev^kP, both scaled
  // by 1/(order+1).  kP = 0 reduces to the classic elementary controller.
  double k_i = 0.7;
  double k_p = 0.4;
};

// PI step-size controller on the scaled error ratio
//   err = max_i |lte_i| / (abstol_i + reltol * |x_i|),
// where err <= 1 means "accept".  Stateful: it remembers the error of
// the previous accepted step (the integral part) and whether the last
// proposal followed a rejection (growth after a rejection is suppressed
// so the controller cannot oscillate accept/reject/accept).
class PiStepController {
 public:
  explicit PiStepController(const StepControlOptions& options);

  // Scale factor for the next step given this step's error ratio; call
  // exactly once per attempted step with accepted = (err <= 1).
  [[nodiscard]] double propose_factor(double error_ratio, bool accepted);

  // Forget controller history (fresh integration interval).
  void reset();

 private:
  StepControlOptions options_;
  double previous_error_ = 1.0;  // error ratio of the last accepted step
  bool had_rejection_ = false;   // last attempt was rejected
};

// Power-of-two geometric step grid with `steps_per_octave` points per
// octave: grid values are 2^(k / m) for integer k.  Quantizing proposed
// steps onto this grid collapses the continuum of controller outputs
// into a handful of distinct dt values, which is what makes a dt-keyed
// LU/base-matrix cache effective.  Halving a grid value lands on the
// grid again (k -> k - m), so step-doubling LTE probes stay cacheable.
class StepGrid {
 public:
  // steps_per_octave must be >= 1; 4 gives a ~19% ratio between
  // neighbouring steps.
  explicit StepGrid(int steps_per_octave);

  // Largest grid value <= h (conservative: quantization never grows the
  // step the controller asked for).  h must be positive and finite.
  [[nodiscard]] double quantize(double h) const;

  [[nodiscard]] int steps_per_octave() const { return steps_per_octave_; }

 private:
  int steps_per_octave_;
};

}  // namespace lcosc
