// Small dense matrix / vector types for the MNA solver and ODE machinery.
//
// Circuit matrices in this project are tiny (tens of nodes), so a dense
// row-major layout beats any sparse structure in both speed and simplicity.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace lcosc {

using Vector = std::vector<double>;

// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  // Construct from nested initializer lists (rows of equal width).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  // Checked element access used by tests.
  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  // Reset all elements to zero without reallocating.
  void set_zero();

  // Resize to rows x cols, zero-filled (contents are discarded).
  void resize(std::size_t rows, std::size_t cols);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] Matrix transposed() const;

  // Matrix-vector product; x.size() must equal cols().
  [[nodiscard]] Vector multiply(const Vector& x) const;

  // Matrix-matrix product; other.rows() must equal cols().
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  // Max-absolute-element norm.
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// --- free vector helpers ---------------------------------------------------

// Euclidean norm.
[[nodiscard]] double norm2(const Vector& v);
// Infinity norm.
[[nodiscard]] double norm_inf(const Vector& v);
// r = a - b (sizes must match).
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);
// r = a + s * b.
[[nodiscard]] Vector add_scaled(const Vector& a, double s, const Vector& b);
// Dot product.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

}  // namespace lcosc
