// Structure-of-arrays state for lockstep Monte-Carlo batching.
//
// A batched engine advances N variants ("lanes") through one time loop;
// each per-variant scalar (node voltage, envelope amplitude, filter
// state...) becomes a channel: a contiguous array indexed by lane, so the
// per-step inner loops are stride-1 sweeps the vectorizer can handle.
// Lanes that stop early (divergence, per-lane failure) are deactivated --
// their slots stay allocated so channel indexing never shifts, but
// engines skip them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lcosc {

class BatchedState {
 public:
  // All channels start zero-filled, all lanes active.
  BatchedState(std::size_t channels, std::size_t lanes);

  [[nodiscard]] std::size_t channels() const { return channels_; }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }

  // Contiguous per-lane values of one channel.
  [[nodiscard]] std::span<double> channel(std::size_t c) {
    return {data_.data() + c * lanes_, lanes_};
  }
  [[nodiscard]] std::span<const double> channel(std::size_t c) const {
    return {data_.data() + c * lanes_, lanes_};
  }

  [[nodiscard]] double& at(std::size_t c, std::size_t lane) {
    return data_[c * lanes_ + lane];
  }
  [[nodiscard]] double at(std::size_t c, std::size_t lane) const {
    return data_[c * lanes_ + lane];
  }

  // Lane activity: a deactivated lane keeps its slot (indexing is stable)
  // but engines skip it in the lockstep loop.
  [[nodiscard]] bool active(std::size_t lane) const { return active_[lane] != 0; }
  void deactivate(std::size_t lane);
  [[nodiscard]] std::size_t active_count() const { return active_count_; }
  [[nodiscard]] bool any_active() const { return active_count_ > 0; }

 private:
  std::size_t channels_;
  std::size_t lanes_;
  std::vector<double> data_;          // channel-major: [channel][lane]
  std::vector<std::uint8_t> active_;  // not vector<bool>: needs addressable bytes
  std::size_t active_count_;
};

}  // namespace lcosc
