// Dense complex matrix and LU solver for small-signal AC analysis.
#pragma once

#include <complex>
#include <vector>

namespace lcosc {

using Complex = std::complex<double>;
using ComplexVector = std::vector<Complex>;

class ComplexMatrix {
 public:
  ComplexMatrix() = default;
  ComplexMatrix(std::size_t rows, std::size_t cols, Complex fill = {});

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  Complex& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  Complex operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  void set_zero();
  [[nodiscard]] ComplexVector multiply(const ComplexVector& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  ComplexVector data_;
};

// LU with partial pivoting on |.|; throws ConvergenceError when singular.
class ComplexLu {
 public:
  explicit ComplexLu(ComplexMatrix a);
  [[nodiscard]] bool singular() const { return singular_; }
  [[nodiscard]] ComplexVector solve(const ComplexVector& b) const;
  bool try_solve(const ComplexVector& b, ComplexVector& x) const;

 private:
  ComplexMatrix lu_;
  std::vector<std::size_t> perm_;
  bool singular_ = false;
};

[[nodiscard]] ComplexVector solve_complex_system(ComplexMatrix a, const ComplexVector& b);

}  // namespace lcosc
