#include "numeric/step_control.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lcosc {

PiStepController::PiStepController(const StepControlOptions& options) : options_(options) {
  LCOSC_REQUIRE(options.order >= 1, "step controller order must be >= 1");
  LCOSC_REQUIRE(options.safety > 0.0 && options.safety <= 1.0,
                "step controller safety must be in (0, 1]");
  LCOSC_REQUIRE(options.min_factor > 0.0 && options.min_factor < 1.0,
                "step controller min_factor must be in (0, 1)");
  LCOSC_REQUIRE(options.max_factor > 1.0, "step controller max_factor must be > 1");
}

double PiStepController::propose_factor(double error_ratio, bool accepted) {
  const double expo = 1.0 / static_cast<double>(options_.order + 1);
  double factor;
  if (!(error_ratio > 0.0) || !std::isfinite(error_ratio)) {
    // A non-finite or failed step (diverged Newton, NaN state) carries no
    // usable error information: back off hard.
    factor = error_ratio == 0.0 ? options_.max_factor : options_.min_factor;
  } else {
    factor = options_.safety * std::pow(error_ratio, -options_.k_i * expo) *
             std::pow(previous_error_, options_.k_p * expo);
  }
  factor = std::clamp(factor, options_.min_factor, options_.max_factor);
  if (accepted) {
    // Right after a rejection the proposal may not grow: the controller
    // just learned the local error constant the hard way, and growing
    // immediately re-enters the rejection region on the next step.
    if (had_rejection_) factor = std::min(factor, 1.0);
    had_rejection_ = false;
    previous_error_ = std::max(error_ratio, 1e-10);
  } else {
    had_rejection_ = true;
    // A rejected step must shrink.
    factor = std::min(factor, 0.9);
  }
  return factor;
}

void PiStepController::reset() {
  previous_error_ = 1.0;
  had_rejection_ = false;
}

StepGrid::StepGrid(int steps_per_octave) : steps_per_octave_(steps_per_octave) {
  LCOSC_REQUIRE(steps_per_octave >= 1, "step grid needs at least one step per octave");
}

double StepGrid::quantize(double h) const {
  LCOSC_REQUIRE(h > 0.0 && std::isfinite(h), "step to quantize must be positive and finite");
  const double m = static_cast<double>(steps_per_octave_);
  double k = std::floor(std::log2(h) * m);
  double q = std::exp2(k / m);
  // log2/exp2 rounding can land one grid point high; step down until the
  // conservative contract (q <= h) holds.
  while (q > h) {
    k -= 1.0;
    q = std::exp2(k / m);
  }
  // ...or one low: take the next grid point up when it still fits.
  for (;;) {
    const double up = std::exp2((k + 1.0) / m);
    if (up > h) break;
    k += 1.0;
    q = up;
  }
  return q;
}

}  // namespace lcosc
