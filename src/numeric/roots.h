// Scalar root finding and 1-D minimization used by calibration sweeps
// (e.g. bisecting the critical transconductance of the oscillation
// condition, Eq. 1 of the paper).
#pragma once

#include <functional>

namespace lcosc {

using ScalarFunction = std::function<double(double)>;
// Predicate for threshold bisection (monotone false->true assumed).
using ScalarPredicate = std::function<bool(double)>;

struct RootOptions {
  double x_tolerance = 1e-12;
  double f_tolerance = 1e-12;
  int max_iterations = 200;
};

// Bisection on a sign change; requires f(lo) and f(hi) to have opposite
// signs (throws ConfigError otherwise).
[[nodiscard]] double bisect_root(const ScalarFunction& f, double lo, double hi,
                                 const RootOptions& options = {});

// Brent's method: bisection safeguarded inverse quadratic interpolation.
[[nodiscard]] double brent_root(const ScalarFunction& f, double lo, double hi,
                                const RootOptions& options = {});

// Bisect the transition point of a boolean predicate that is false at lo
// and true at hi (e.g. "does the oscillator sustain at this Gm?").
[[nodiscard]] double bisect_threshold(const ScalarPredicate& pred, double lo, double hi,
                                      double x_tolerance = 1e-9, int max_iterations = 200);

// Golden-section minimization of a unimodal function on [lo, hi].
[[nodiscard]] double golden_section_minimize(const ScalarFunction& f, double lo, double hi,
                                             double x_tolerance = 1e-9);

}  // namespace lcosc
