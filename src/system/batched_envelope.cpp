#include "system/batched_envelope.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "common/error.h"
#include "devices/batched_blocks.h"
#include "driver/oscillator_driver.h"
#include "numeric/batched_state.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"
#include "regulation/amplitude_detector.h"
#include "regulation/regulation_fsm.h"
#include "system/envelope_kernel.h"
#include "tank/rlc_tank.h"

namespace lcosc::system {

namespace {

// Cold per-lane state: everything the hot loop touches at most once per
// regulation tick.  The per-substep state (amplitude, rectified mean)
// lives in the BatchedState channels instead.
struct Lane {
  double rp = 0.0;
  double ceff = 0.0;
  double quiescent = 0.0;
  std::optional<driver::OscillatorDriver> driver;
  std::optional<regulation::RegulationFsm> fsm;
  // Cached differential-port stage; equals the stage the serial path
  // constructs per call (refreshed on every code change).
  std::optional<driver::GmStage> port;
  std::uint64_t substeps = 0;
  std::uint64_t steps = 0;  // macro steps advanced while the lane was active
  std::uint64_t ticks = 0;  // regulation ticks taken while the lane was active
  double tail_acc = 0.0;
  std::uint64_t tail_n = 0;
  double last_tick_amp = 0.0;
  int last_tick_code = 0;
  bool has_tick = false;
  bool ok = false;
};

void refresh_port(Lane& lane) { lane.port = lane.driver->differential_port_stage(); }

}  // namespace

std::vector<BatchedLaneResult> run_batched_envelope(
    const std::vector<BatchedEnvelopeLane>& lanes, double duration) {
  LCOSC_SPAN("envelope.batched_run");
  LCOSC_REQUIRE(!lanes.empty(), "batched envelope needs at least one lane");
  LCOSC_REQUIRE(duration > 0.0, "duration must be positive");

  // The lockstep loop shares one time grid: dt, the regulation tick
  // schedule, and the NVM preset time must agree across lanes (they are
  // design constants, not Monte-Carlo variables).  The detector filter
  // tau is shared for the same reason (one LowPassBank decay factor).
  const EnvelopeSimConfig& ref = lanes.front().config;
  for (const auto& lane : lanes) {
    const EnvelopeSimConfig& cfg = lane.config;
    LCOSC_REQUIRE(!cfg.adaptive, "batched envelope engine is fixed-step only");
    LCOSC_REQUIRE(cfg.dt == ref.dt, "all lanes must share the envelope dt");
    LCOSC_REQUIRE(cfg.regulation.tick_period == ref.regulation.tick_period,
                  "all lanes must share the regulation tick period");
    LCOSC_REQUIRE(cfg.regulation.nvm_delay == ref.regulation.nvm_delay,
                  "all lanes must share the NVM preset delay");
    LCOSC_REQUIRE(cfg.detector.filter_tau == ref.detector.filter_tau,
                  "all lanes must share the detector filter tau");
  }
  LCOSC_REQUIRE(ref.dt > 0.0, "envelope step must be positive");

  const std::size_t n = lanes.size();
  std::vector<BatchedLaneResult> results(n);
  std::vector<Lane> state(n);

  // Channels: 0 = amplitude A, 1 = rectified-mean detector input A/pi.
  BatchedState soa(2, n);
  const auto amp = soa.channel(0);
  const auto rect = soa.channel(1);
  devices::LowPassBank vdc1(ref.detector.filter_tau, n);
  std::vector<double> vr3(n, 0.0);
  std::vector<double> vr4(n, 0.0);
  std::vector<devices::WindowState> verdicts(n, devices::WindowState::Inside);

  // Per-lane setup mirrors EnvelopeSimulator's constructor + run preamble;
  // a throwing lane is handed back for the serial fallback instead of
  // failing the whole batch.
  for (std::size_t l = 0; l < n; ++l) {
    try {
      const EnvelopeSimConfig& cfg = lanes[l].config;
      LCOSC_REQUIRE(cfg.initial_amplitude > 0.0, "initial amplitude must be positive");
      LCOSC_REQUIRE(cfg.max_step_multiple >= 1, "envelope max_step_multiple must be >= 1");
      const tank::RlcTank tk(cfg.tank);
      Lane& lane = state[l];
      lane.rp = tk.parallel_resistance();
      lane.ceff = tk.effective_capacitance();
      lane.quiescent = cfg.driver.quiescent_current;
      lane.driver.emplace(cfg.driver);
      lane.fsm.emplace(cfg.regulation);
      if (lanes[l].mismatch_dac != nullptr) {
        lane.driver->use_mismatched_dac(lanes[l].mismatch_dac);
      }
      const regulation::AmplitudeDetector detector(cfg.detector);
      vr3[l] = detector.vr3();
      vr4[l] = detector.vr4();

      lane.fsm->por_reset();
      lane.driver->set_code(lane.fsm->code());
      lane.driver->set_enabled(true);
      refresh_port(lane);
      amp[l] = cfg.initial_amplitude;
      lane.ok = true;
    } catch (const std::exception&) {
      results[l].setup_failed = true;
      soa.deactivate(l);
    }
  }

  const double dt = ref.dt;
  const auto steps = static_cast<std::int64_t>(std::ceil(duration / dt * (1.0 - 1e-12)));
  const double tick_period = ref.regulation.tick_period;
  const double nvm_delay = ref.regulation.nvm_delay;
  std::int64_t tick_index = 1;
  bool nvm_applied = false;

  // Settled-amplitude tail window over the fixed output grid, computed
  // exactly like EnvelopeRunResult::settled_amplitude(): trace samples
  // run from 1*dt to steps*dt, and the tail keeps times >= t0.
  constexpr double kTailFraction = 0.2;
  const double trace_start = 1.0 * dt;
  const double trace_end = static_cast<double>(steps) * dt;
  const double t0 = trace_end - kTailFraction * (trace_end - trace_start);

  for (std::int64_t step = 0; step < steps && soa.any_active(); ++step) {
    const double t_step = static_cast<double>(step) * dt;
    if (!nvm_applied && t_step >= nvm_delay) {
      for (std::size_t l = 0; l < n; ++l) {
        if (!soa.active(l)) continue;
        Lane& lane = state[l];
        lane.fsm->apply_nvm_preset();
        lane.driver->set_code(lane.fsm->code());
        refresh_port(lane);
      }
      nvm_applied = true;
    }

    for (std::size_t l = 0; l < n; ++l) {
      if (!soa.active(l)) continue;
      Lane& lane = state[l];
      // The same growth-rate evaluation the serial path performs via
      // fundamental_port_current(), against the cached port stage.
      const driver::GmStage& port = *lane.port;
      const double rp = lane.rp;
      const double ceff = lane.ceff;
      auto lambda_of = [&](double a) {
        const double n_eff = port.fundamental_current(a) / a;
        return (n_eff - 1.0 / rp) / (2.0 * ceff);
      };
      amp[l] = advance_envelope_guarded(lambda_of, amp[l], dt, lane.substeps);
      ++lane.steps;
      if (!std::isfinite(amp[l])) {
        // The serial path throws ConvergenceError here; the lane drops
        // out and the caller replays it serially (retries included).
        results[l].diverged = true;
        soa.deactivate(l);
      }
    }
    const double t = static_cast<double>(step + 1) * dt;

    // Detector chain in bank form: rectified mean then the shared-tau
    // low-pass.  Inactive lanes ride along (their values are never read).
    devices::rectified_mean_bank(amp, rect);
    vdc1.step(dt, rect);

    if (t >= t0) {
      for (std::size_t l = 0; l < n; ++l) {
        if (!soa.active(l)) continue;
        state[l].tail_acc += amp[l];
        ++state[l].tail_n;
      }
    }

    if (t >= static_cast<double>(tick_index) * tick_period * (1.0 - 1e-12)) {
      window_verdict_bank(vdc1.outputs(), vr3, vr4, verdicts);
      for (std::size_t l = 0; l < n; ++l) {
        if (!soa.active(l)) continue;
        Lane& lane = state[l];
        lane.fsm->tick(verdicts[l]);
        lane.driver->set_code(lane.fsm->code());
        refresh_port(lane);
        lane.last_tick_amp = amp[l];
        lane.last_tick_code = lane.fsm->code();
        lane.has_tick = true;
        ++lane.ticks;
      }
      ++tick_index;
    }
  }

  std::uint64_t total_substeps = 0;
  std::uint64_t total_lane_steps = 0;
  std::uint64_t total_lane_ticks = 0;
  for (std::size_t l = 0; l < n; ++l) {
    Lane& lane = state[l];
    BatchedLaneResult& r = results[l];
    r.substeps = lane.substeps;
    total_substeps += lane.substeps;
    total_lane_steps += lane.steps;
    total_lane_ticks += lane.ticks;
    if (!lane.ok || r.diverged) continue;
    r.final_code = lane.fsm->code();
    r.settled_amplitude =
        lane.tail_n > 0 ? lane.tail_acc / static_cast<double>(lane.tail_n) : 0.0;
    if (lane.has_tick) {
      // The serial path evaluates supply_current at each tick with the
      // post-tick code; only the last tick's value is consumed, and the
      // evaluation is pure, so one call at the recorded (code, amplitude)
      // reproduces it.  (An NVM preset after the last tick could have
      // moved the code, hence the explicit restore.)
      lane.driver->set_code(lane.last_tick_code);
      r.supply_current = lane.driver->supply_current(lane.last_tick_amp);
    }
  }

  // All envelope.batched.* counters are PURE PER LANE: a lane contributes
  // the same increments no matter how the sweep is sliced into engine
  // invocations (chunk size, shard layout, resume schedule).  That purity
  // is what keeps the fleet's deterministic metrics.json byte-identical
  // across shard counts once the service drains chunks -- a chunk
  // straddling a shard boundary splits into two invocations, so
  // per-invocation counters (a "runs" count, a macro-step total gated on
  // any_active()) would be layout-dependent.
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("envelope.batched.lanes").add(n);
    registry.counter("envelope.batched.lane_steps").add(total_lane_steps);
    registry.counter("envelope.batched.substeps").add(total_substeps);
    registry.counter("envelope.batched.lane_ticks").add(total_lane_ticks);
  }
  return results;
}

BatchedEnvelopeEngine::BatchedEnvelopeEngine(std::size_t chunk_lanes)
    : chunk_lanes_(chunk_lanes) {
  LCOSC_REQUIRE(chunk_lanes > 0, "chunk_lanes must be positive");
}

void BatchedEnvelopeEngine::run(std::size_t total, double duration,
                                const LaneFactory& factory, const ResultSink& sink) const {
  LCOSC_SPAN("envelope.batched_stream");
  std::vector<BatchedEnvelopeLane> window;
  for (std::size_t lo = 0; lo < total; lo += chunk_lanes_) {
    const std::size_t hi = std::min(total, lo + chunk_lanes_);
    window.clear();
    window.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) window.push_back(factory(i));
    const std::vector<BatchedLaneResult> results = run_batched_envelope(window, duration);
    for (std::size_t i = lo; i < hi; ++i) sink(i, results[i - lo]);
    // The window's lane configs (and any mismatch DACs they own) die
    // here; only the caller's folded outputs survive the next window.
  }
}

}  // namespace lcosc::system
