#include "system/sensor_system.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace lcosc::system {

namespace {

OscillatorSystemConfig with_waveforms(OscillatorSystemConfig cfg) {
  // The receiver consumes the excitation waveform sample by sample.
  if (cfg.waveform_decimation <= 0) cfg.waveform_decimation = 1;
  return cfg;
}

}  // namespace

SensorSystem::SensorSystem(SensorSystemConfig config)
    : config_(config),
      oscillator_(with_waveforms(config.oscillator)),
      receiver_(config.receiver) {
  LCOSC_REQUIRE(config_.coil_short_conductance >= 0.0,
                "short conductance must be non-negative");
}

SensorRunResult SensorSystem::run(double duration) {
  // Co-simulation: run the oscillator with waveform recording, then feed
  // the receiver sample by sample.  (The receiver does not load the tank:
  // the receiving coils couple magnetically and their sense nodes are
  // high impedance, so one-way coupling is the right fidelity here.)
  SensorRunResult result;
  result.oscillator = oscillator_.run(duration);
  const Trace& vd = result.oscillator.differential;
  LCOSC_REQUIRE(vd.size() >= 2, "oscillator run produced no waveform");

  receiver_.reset();
  double prev_t = vd.start_time();
  for (std::size_t i = 1; i < vd.size(); ++i) {
    const double t = vd.time(i);
    const double dt = t - prev_t;
    const bool shorted =
        config_.coil_short_conductance > 0.0 && t >= config_.coil_short_time;
    // The oscillator pin rides Vref (2.5 V) plus half the differential.
    receiver_.step(dt, vd.value(i), config_.rotor_angle,
                   shorted ? config_.coil_short_conductance : 0.0,
                   2.5 + 0.5 * vd.value(i));
    prev_t = t;
  }

  result.estimated_angle = receiver_.estimated_angle();
  double err = result.estimated_angle - config_.rotor_angle;
  while (err > kPi) err -= kTwoPi;
  while (err < -kPi) err += kTwoPi;
  result.angle_error = err;
  result.coil_short_fault = receiver_.coil_short_fault();
  result.supervision_cycles = receiver_.supervision_cycles();
  return result;
}

}  // namespace lcosc::system
