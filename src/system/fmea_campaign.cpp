#include "system/fmea_campaign.h"

#include <cmath>
#include <cstdint>

#include "common/error.h"
#include "common/parallel.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::system {

std::size_t FmeaReport::detected_count() const {
  std::size_t n = 0;
  for (const auto& r : rows) {
    if (r.detected) ++n;
  }
  return n;
}

std::size_t FmeaReport::expected_channel_count() const {
  std::size_t n = 0;
  for (const auto& r : rows) {
    if (r.expected_channel_hit) ++n;
  }
  return n;
}

bool FmeaReport::all_detected() const { return detected_count() == rows.size(); }

std::vector<tank::TankFault> fmea_fault_list() {
  return {tank::TankFault::OpenCoil,        tank::TankFault::CoilShortToGround,
          tank::TankFault::CoilShortToSupply, tank::TankFault::ShortedTurns,
          tank::TankFault::IncreasedResistance, tank::TankFault::MissingCosc1,
          tank::TankFault::MissingCosc2,    tank::TankFault::DegradedCosc1};
}

namespace {

// Auto step budget: 4x the nominal step count of the run, so a retry with
// doubled steps_per_period still fits inside the same budget.
std::size_t auto_step_budget(const OscillatorSystemConfig& sys_cfg, double duration) {
  const tank::RlcTank healthy(sys_cfg.tank);
  const double dt = 1.0 / (healthy.resonance_frequency() * sys_cfg.steps_per_period);
  return 4 * static_cast<std::size_t>(std::ceil(duration / dt));
}

}  // namespace

FmeaRow run_fmea_case(const FmeaCampaignConfig& config, tank::TankFault fault) {
  const double duration = config.settle_time + config.observe_time;

  // Label everything the case emits (trace span, safety/FSM events) with
  // the fault under test so a mixed log remains attributable.
  const std::string label = "fmea:" + tank::to_string(fault);
  const obs::EventContext event_ctx(label);
  const obs::Span span(label);

  FmeaRow row;
  row.fault = fault;
  row.expected = tank::expected_detection(fault);

  row.status = run_guarded_case(
      [&](int attempt) {
        OscillatorSystemConfig sys_cfg = config.system;
        // Retry after a convergence failure with a tightened integrator.
        for (int k = 0; k < attempt; ++k) sys_cfg.steps_per_period *= 2;
        sys_cfg.step_budget = config.step_budget > 0
                                  ? config.step_budget
                                  : auto_step_budget(config.system, duration);

        OscillatorSystem sys(sys_cfg);
        if (fault != tank::TankFault::None) {
          sys.schedule_fault(fault, config.settle_time, config.severity);
        }
        const SimulationResult sim = sys.run(duration);

        row.observed = sim.final_faults;
        row.detected = sim.final_faults.any();
        row.safe_state_entered = sim.final_mode == regulation::RegulationMode::SafeState;
        row.final_code = sim.final_code;

        switch (row.expected) {
          case tank::DetectionChannel::NoneExpected:
            row.expected_channel_hit = !row.detected;
            break;
          case tank::DetectionChannel::MissingOscillation:
            row.expected_channel_hit = sim.final_faults.missing_oscillation;
            break;
          case tank::DetectionChannel::LowAmplitude:
            row.expected_channel_hit = sim.final_faults.low_amplitude;
            break;
          case tank::DetectionChannel::Asymmetry:
            row.expected_channel_hit = sim.final_faults.asymmetry;
            break;
        }

        // Detection latency: first tick at/after injection with a flag.
        row.detection_latency.reset();
        for (const auto& tick : sim.ticks) {
          if (tick.time >= config.settle_time && tick.faults.any()) {
            row.detection_latency = tick.time - config.settle_time;
            break;
          }
        }
      },
      config.max_retries, config.retry_backoff);

  if (row.status.outcome == CaseOutcome::Ok &&
      row.expected != tank::DetectionChannel::NoneExpected && !row.expected_channel_hit) {
    row.status.outcome = CaseOutcome::Undetected;
  }

  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("campaign.cases").add(1);
    registry.counter("campaign.cases." + to_string(row.status.outcome)).add(1);
    if (row.status.retries > 0) {
      registry.counter("campaign.retries")
          .add(static_cast<std::uint64_t>(row.status.retries));
    }
    if (row.detection_latency.has_value()) {
      static obs::Histogram& latency = registry.histogram(
          "fmea.detection_latency_ms", {0.5, 1, 2, 3, 4, 5, 7.5, 10, 15, 20});
      latency.record(*row.detection_latency * 1e3);
    }
  }
  if (obs::events_enabled()) {
    obs::Event event("campaign.case");
    event.str("campaign", "fmea")
        .str("fault", tank::to_string(fault))
        .str("outcome", to_string(row.status.outcome))
        .integer("retries", row.status.retries)
        .boolean("detected", row.detected);
    if (row.detection_latency.has_value()) {
      event.num("detection_latency_ms", *row.detection_latency * 1e3);
    }
  }
  return row;
}

std::size_t fmea_case_count() { return fmea_fault_list().size(); }

FmeaRow run_fmea_case_at(const FmeaCampaignConfig& config, std::size_t index) {
  const std::vector<tank::TankFault> faults = fmea_fault_list();
  LCOSC_REQUIRE(index < faults.size(), "FMEA case index out of range");
  return run_fmea_case(config, faults[index]);
}

FmeaReport run_fmea_campaign(const FmeaCampaignConfig& config) {
  // Each fault case builds its own OscillatorSystem from the shared
  // const config, so the per-fault work is independent and the report is
  // identical for any worker count.
  FmeaReport report;
  report.rows = parallel_map(
      fmea_case_count(), [&](std::size_t i) { return run_fmea_case_at(config, i); },
      config.workers);
  return report;
}

}  // namespace lcosc::system
