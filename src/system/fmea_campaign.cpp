#include "system/fmea_campaign.h"

#include <cmath>

#include "common/error.h"
#include "common/parallel.h"

namespace lcosc::system {

std::size_t FmeaReport::detected_count() const {
  std::size_t n = 0;
  for (const auto& r : rows) {
    if (r.detected) ++n;
  }
  return n;
}

std::size_t FmeaReport::expected_channel_count() const {
  std::size_t n = 0;
  for (const auto& r : rows) {
    if (r.expected_channel_hit) ++n;
  }
  return n;
}

bool FmeaReport::all_detected() const { return detected_count() == rows.size(); }

std::vector<tank::TankFault> fmea_fault_list() {
  return {tank::TankFault::OpenCoil,        tank::TankFault::CoilShortToGround,
          tank::TankFault::CoilShortToSupply, tank::TankFault::ShortedTurns,
          tank::TankFault::IncreasedResistance, tank::TankFault::MissingCosc1,
          tank::TankFault::MissingCosc2,    tank::TankFault::DegradedCosc1};
}

namespace {

// Auto step budget: 4x the nominal step count of the run, so a retry with
// doubled steps_per_period still fits inside the same budget.
std::size_t auto_step_budget(const OscillatorSystemConfig& sys_cfg, double duration) {
  const tank::RlcTank healthy(sys_cfg.tank);
  const double dt = 1.0 / (healthy.resonance_frequency() * sys_cfg.steps_per_period);
  return 4 * static_cast<std::size_t>(std::ceil(duration / dt));
}

}  // namespace

FmeaRow run_fmea_case(const FmeaCampaignConfig& config, tank::TankFault fault) {
  const double duration = config.settle_time + config.observe_time;

  FmeaRow row;
  row.fault = fault;
  row.expected = tank::expected_detection(fault);

  row.status = run_guarded_case(
      [&](int attempt) {
        OscillatorSystemConfig sys_cfg = config.system;
        // Retry after a convergence failure with a tightened integrator.
        for (int k = 0; k < attempt; ++k) sys_cfg.steps_per_period *= 2;
        sys_cfg.step_budget = config.step_budget > 0
                                  ? config.step_budget
                                  : auto_step_budget(config.system, duration);

        OscillatorSystem sys(sys_cfg);
        if (fault != tank::TankFault::None) {
          sys.schedule_fault(fault, config.settle_time, config.severity);
        }
        const SimulationResult sim = sys.run(duration);

        row.observed = sim.final_faults;
        row.detected = sim.final_faults.any();
        row.safe_state_entered = sim.final_mode == regulation::RegulationMode::SafeState;
        row.final_code = sim.final_code;

        switch (row.expected) {
          case tank::DetectionChannel::NoneExpected:
            row.expected_channel_hit = !row.detected;
            break;
          case tank::DetectionChannel::MissingOscillation:
            row.expected_channel_hit = sim.final_faults.missing_oscillation;
            break;
          case tank::DetectionChannel::LowAmplitude:
            row.expected_channel_hit = sim.final_faults.low_amplitude;
            break;
          case tank::DetectionChannel::Asymmetry:
            row.expected_channel_hit = sim.final_faults.asymmetry;
            break;
        }

        // Detection latency: first tick at/after injection with a flag.
        row.detection_latency.reset();
        for (const auto& tick : sim.ticks) {
          if (tick.time >= config.settle_time && tick.faults.any()) {
            row.detection_latency = tick.time - config.settle_time;
            break;
          }
        }
      },
      config.max_retries);

  if (row.status.outcome == CaseOutcome::Ok &&
      row.expected != tank::DetectionChannel::NoneExpected && !row.expected_channel_hit) {
    row.status.outcome = CaseOutcome::Undetected;
  }
  return row;
}

FmeaReport run_fmea_campaign(const FmeaCampaignConfig& config) {
  // Each fault case builds its own OscillatorSystem from the shared
  // const config, so the per-fault work is independent and the report is
  // identical for any worker count.
  const std::vector<tank::TankFault> faults = fmea_fault_list();
  FmeaReport report;
  report.rows = parallel_map(
      faults.size(), [&](std::size_t i) { return run_fmea_case(config, faults[i]); },
      config.workers);
  return report;
}

}  // namespace lcosc::system
