// The complete single-oscillator system: external RLC tank + driver with
// current-limitation DAC + amplitude detector + regulation FSM + safety
// detectors, integrated cycle-accurately (fixed-step RK4 on the tank
// states, discrete 1 ms regulation ticks, fault injection at runtime).
//
// Voltages are deviations from the Vref mid-supply operating point.
// States: v(LC1), v(LC2), i(Losc).
#pragma once

#include <functional>
#include <optional>
#include <variant>
#include <vector>

#include "driver/oscillator_driver.h"
#include "faults/fault_bus.h"
#include "faults/internal_fault.h"
#include "regulation/amplitude_detector.h"
#include "regulation/regulation_fsm.h"
#include "safety/safety_controller.h"
#include "tank/rlc_tank.h"
#include "tank/tank_faults.h"
#include "waveform/trace.h"

namespace lcosc::system {

struct OscillatorSystemConfig {
  tank::TankConfig tank{};
  driver::DriverConfig driver{};
  regulation::AmplitudeDetectorConfig detector{};
  regulation::RegulationConfig regulation{};
  safety::SafetyControllerConfig safety{};

  // Integration steps per (healthy-tank) oscillation period.
  int steps_per_period = 64;
  // Driver output bandwidth [Hz]; 0 = ideal (instantaneous).  The paper's
  // Section 5: "to limit losses the driver must be much faster than
  // oscillation frequency" -- a slow driver lags the pin voltages, turning
  // part of the drive current reactive and wasting supply current.
  double driver_bandwidth = 0.0;
  // Initial differential kick applied when the driver is enabled,
  // representing the enable transient that starts the oscillation.
  double startup_kick = 50e-3;
  // Conductance used to model pin-short faults [S] (~5 ohm short).
  double short_conductance = 0.2;
  // Vref DC level (mid supply), used for short-to-ground/supply levels.
  double vref_dc = 2.5;
  double vdd = 5.0;

  // Waveform recording: 0 disables; otherwise record every n-th sample.
  int waveform_decimation = 1;

  // Per-run integration step budget; 0 = unlimited.  When exceeded run()
  // throws BudgetExceededError.  Campaign runners use this to bound a
  // runaway case (e.g. a stalled simulation) instead of hanging.
  std::size_t step_budget = 0;
};

// Snapshot of the discrete state at each regulation tick.
struct TickRecord {
  double time = 0.0;
  int code = 0;
  double vdc1 = 0.0;
  devices::WindowState window = devices::WindowState::Inside;
  safety::FaultFlags faults{};
  double supply_current = 0.0;  // estimated at this tick's amplitude
};

struct SimulationResult {
  // Differential pin voltage v(LC1)-v(LC2); empty when recording disabled.
  Trace differential;
  // Pin voltages (same decimation).
  Trace v_lc1;
  Trace v_lc2;
  // Per-half-cycle envelope of the differential voltage.
  Trace envelope;
  // Discrete regulation/safety state per 1 ms tick.
  std::vector<TickRecord> ticks;
  // Final latched state.
  safety::FaultFlags final_faults{};
  int final_code = 0;
  regulation::RegulationMode final_mode = regulation::RegulationMode::PowerOnReset;

  // Mean steady-state amplitude over the trailing fraction of the run.
  [[nodiscard]] double settled_amplitude(double tail_fraction = 0.2) const;
  // First tick index with all faults clear / any fault set, -1 if none.
  [[nodiscard]] int first_fault_tick() const;
};

// Scenario events, applied at their scheduled times during run().
struct FaultEvent {
  tank::TankFault fault{};
  tank::FaultSeverity severity{};
};
// External components repaired + diagnostic reset: healthy tank restored,
// detectors cleared, safe-state latch released (the code stays where the
// safe state left it and regulates back down).
struct RecoveryEvent {};
// Junction temperature step (drifts the bandgap-referred window).
struct TemperatureEvent {
  double kelvin = 300.0;
};
// Internal (on-chip) single-point fault injected on the fault bus.
struct InternalFaultEvent {
  faults::InternalFault fault{};
};
using ScenarioAction =
    std::variant<FaultEvent, RecoveryEvent, TemperatureEvent, InternalFaultEvent>;

class OscillatorSystem {
 public:
  explicit OscillatorSystem(OscillatorSystemConfig config);

  // Inject a fault after `at_time` of simulated time (relative to run
  // start).  Call before run().
  void schedule_fault(tank::TankFault fault, double at_time,
                      const tank::FaultSeverity& severity = {});

  // Inject an internal (on-chip) fault after `at_time`.  Call before
  // run().  A SelfTestStall event requires a positive step_budget (the
  // frozen clock would otherwise never let the run finish).
  void schedule_internal_fault(const faults::InternalFault& fault, double at_time);

  // General scenario scripting: apply `action` at `at_time`.  Events are
  // applied in time order; multiple events are allowed.
  void schedule_event(double at_time, ScenarioAction action);

  // Run the system for `duration` seconds from power-on reset.
  [[nodiscard]] SimulationResult run(double duration);

  // Access to the subsystems for configuration before run().
  [[nodiscard]] driver::OscillatorDriver& driver() { return driver_; }
  [[nodiscard]] const OscillatorSystemConfig& config() const { return config_; }
  [[nodiscard]] tank::RlcTank healthy_tank() const { return tank::RlcTank(config_.tank); }

 private:
  struct TankState {
    double v1 = 0.0;
    double v2 = 0.0;
    double il = 0.0;
    // Driver output currents as states when driver_bandwidth > 0.
    double i1 = 0.0;
    double i2 = 0.0;
  };

  // Structural view of the (possibly faulted) tank during the run.
  struct ActiveTank {
    tank::TankConfig config{};
    bool loop_open = false;
    bool pin1_grounded = false;
    bool pin2_grounded = false;
    bool pin1_to_supply = false;
  };

  // Everything run()'s integration loop carries between steps.  Kept in
  // one value so a paused run can be copied (RunSession) and resumed with
  // the exact state a straight-through run would have had at that point.
  struct RunState {
    double duration = 0.0;
    double dt = 0.0;
    std::size_t total_steps = 0;
    std::size_t step = 0;
    std::size_t steps_taken = 0;
    bool nvm_applied = false;
    std::size_t next_event = 0;
    double next_tick = 0.0;
    double t = 0.0;
    TankState s{};
    ActiveTank active{};
    bool record = false;
    // Inline envelope tracker (per-half-cycle peak of |v_diff|).
    double env_peak = 0.0;
    double env_peak_time = 0.0;
    bool env_have = false;
    bool env_last_positive = false;
    SimulationResult result{};
  };

  friend class RunSession;

  [[nodiscard]] TankState derivatives(const TankState& s, const ActiveTank& t) const;

  // run() split at pausable boundaries: preamble, loop, epilogue.  The
  // loop pauses (returns) when the loop-top time reaches stop_time.
  [[nodiscard]] RunState begin_run(double duration);
  void advance_run(RunState& rs, double stop_time);
  [[nodiscard]] SimulationResult finish_run(RunState& rs);

  // Subsystems observe the bus through const pointers; run() re-attaches
  // them so copied systems never alias another instance's bus.
  void attach_fault_bus();

  OscillatorSystemConfig config_;
  driver::OscillatorDriver driver_;
  regulation::AmplitudeDetector detector_;
  regulation::RegulationFsm fsm_;
  safety::SafetyController safety_;
  faults::FaultBus fault_bus_;

  struct TimedEvent {
    double time = 0.0;
    ScenarioAction action;
  };
  std::vector<TimedEvent> events_;
};

// Resumable run: owns a private copy of the system plus the loop state,
// pausable at step boundaries.  advance_until(T) stops at the exact
// loop-top position where an event scheduled at time T would fire, so a
// session paused there, copied, injected into, and run to completion is
// bit-identical to a fresh system with that event scheduled up front.
// The internal-FMEA batched path shares one healthy settle prefix
// across all fault variants this way (DESIGN.md §16).
class RunSession {
 public:
  // Copies `system` and performs run()'s preamble (resets, bus clear).
  RunSession(const OscillatorSystem& system, double duration);
  // Deep copy; the copy re-attaches its subsystems to its own fault
  // bus (never aliasing the source session's).
  RunSession(const RunSession& other);
  RunSession& operator=(const RunSession&) = delete;

  // Advance until the loop-top time reaches stop_time (or the run
  // ends).  Throws exactly what run() would (ConvergenceError,
  // BudgetExceededError).
  void advance_until(double stop_time);
  // Inject an internal fault firing at the next loop top -- equivalent
  // to scheduling it at the current pause time before the run.  Only
  // valid while the session has no pending scheduled events.
  void inject_internal_fault(const faults::InternalFault& fault);
  // Run to the end and produce the result; emits the same run metrics
  // a straight run() emits.  The session is spent afterwards.
  [[nodiscard]] SimulationResult finish();

  [[nodiscard]] double time() const { return state_.t; }

 private:
  OscillatorSystem system_;
  OscillatorSystem::RunState state_;
};

}  // namespace lcosc::system
