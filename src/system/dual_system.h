// Redundant dual-oscillator system (paper Fig. 9 and Section 8): two
// complete oscillator systems whose excitation coils are magnetically
// coupled.  At a programmable time one chip loses its supply; from then
// on its pins stop driving and instead load its tank with the DC I-V
// characteristic of the unsupplied output stage (extracted from the
// transistor-level testbench of Figs. 10/11 -> Fig. 17).
//
// The experiment the paper reports: with the Fig. 11 bulk-switched stage
// the surviving system keeps regulating essentially unchanged; with the
// standard CMOS stage (Fig. 10a) the dead chip's junction paths clamp the
// coupled swing and drag the live system down.
#pragma once

#include <optional>

#include "driver/oscillator_driver.h"
#include "numeric/interpolate.h"
#include "regulation/amplitude_detector.h"
#include "regulation/regulation_fsm.h"
#include "tank/coupled_tanks.h"
#include "waveform/trace.h"

namespace lcosc::system {

struct DualSystemConfig {
  tank::CoupledTanksConfig tanks{};
  driver::DriverConfig driver{};
  regulation::AmplitudeDetectorConfig detector{};
  regulation::RegulationConfig regulation{};
  int steps_per_period = 64;
  double startup_kick = 50e-3;
  // Record the differential waveforms every n-th sample (0 = off); needed
  // for frequency/locking measurements.
  int waveform_decimation = 0;
};

struct DualRunResult {
  Trace envelope1;  // per-half-cycle |v_diff| envelope of system 1
  Trace envelope2;
  // Differential waveforms (empty unless waveform_decimation > 0).
  Trace differential1;
  Trace differential2;
  std::vector<int> codes1;  // regulation code of system 1 per tick
  std::vector<int> codes2;
  double event_time = -1.0;  // supply-loss time (-1 if none)

  // Mean envelope of system 1 in a window [t0, t1].
  [[nodiscard]] double mean_envelope1(double t0, double t1) const;
};

class DualSystem {
 public:
  explicit DualSystem(DualSystemConfig config);

  // Schedule loss of supply on system 2 at `at_time`; afterwards its pins
  // present the given differential I-V characteristic (current absorbed
  // into LC1 of the dead chip as a function of v(LC1)-v(LC2)).
  void schedule_supply_loss(double at_time, PwlTable dead_chip_iv);

  [[nodiscard]] DualRunResult run(double duration);

  [[nodiscard]] driver::OscillatorDriver& driver1() { return driver1_; }
  [[nodiscard]] driver::OscillatorDriver& driver2() { return driver2_; }

 private:
  DualSystemConfig config_;
  tank::CoupledTanks coils_;
  driver::OscillatorDriver driver1_;
  driver::OscillatorDriver driver2_;
  regulation::AmplitudeDetector detector1_;
  regulation::AmplitudeDetector detector2_;
  regulation::RegulationFsm fsm1_;
  regulation::RegulationFsm fsm2_;

  std::optional<double> supply_loss_time_;
  PwlTable dead_iv_;
};

}  // namespace lcosc::system
