#include "system/oscillator_system.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/constants.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::system {

double SimulationResult::settled_amplitude(double tail_fraction) const {
  LCOSC_REQUIRE(tail_fraction > 0.0 && tail_fraction <= 1.0, "tail fraction in (0,1]");
  LCOSC_REQUIRE(!envelope.empty(), "no envelope recorded");
  const double t0 =
      envelope.end_time() - tail_fraction * (envelope.end_time() - envelope.start_time());
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    if (envelope.time(i) >= t0) {
      acc += envelope.value(i);
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

int SimulationResult::first_fault_tick() const {
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    if (ticks[i].faults.any()) return static_cast<int>(i);
  }
  return -1;
}

OscillatorSystem::OscillatorSystem(OscillatorSystemConfig config)
    : config_(config),
      driver_(config.driver),
      detector_(config.detector),
      fsm_(config.regulation),
      safety_(config.safety) {
  LCOSC_REQUIRE(config_.steps_per_period >= 16,
                "need at least 16 integration steps per period");
  LCOSC_REQUIRE(config_.startup_kick > 0.0, "startup kick must be positive");
  // Validate the tank through its invariants.
  (void)tank::RlcTank(config_.tank);
  attach_fault_bus();
}

void OscillatorSystem::attach_fault_bus() {
  driver_.attach_fault_bus(&fault_bus_);
  detector_.attach_fault_bus(&fault_bus_);
  fsm_.attach_fault_bus(&fault_bus_);
  safety_.attach_fault_bus(&fault_bus_);
}

void OscillatorSystem::schedule_fault(tank::TankFault fault, double at_time,
                                      const tank::FaultSeverity& severity) {
  schedule_event(at_time, FaultEvent{fault, severity});
}

void OscillatorSystem::schedule_internal_fault(const faults::InternalFault& fault,
                                               double at_time) {
  schedule_event(at_time, InternalFaultEvent{fault});
}

void OscillatorSystem::schedule_event(double at_time, ScenarioAction action) {
  LCOSC_REQUIRE(at_time >= 0.0, "event time must be non-negative");
  events_.push_back({at_time, std::move(action)});
  std::sort(events_.begin(), events_.end(),
            [](const TimedEvent& a, const TimedEvent& b) { return a.time < b.time; });
}

OscillatorSystem::TankState OscillatorSystem::derivatives(const TankState& s,
                                                          const ActiveTank& t) const {
  const driver::NodeCurrents drv = driver_.output(s.v1, s.v2);
  const double il = t.loop_open ? 0.0 : s.il;

  // Finite driver speed: the delivered currents lag the ideal cross-coupled
  // response with a single pole at driver_bandwidth.
  const bool slow_driver = config_.driver_bandwidth > 0.0;
  const double w_drv = kTwoPi * config_.driver_bandwidth;
  const double i1 = slow_driver ? s.i1 : drv.into_lc1;
  const double i2 = slow_driver ? s.i2 : drv.into_lc2;

  // Soft rail clamps (ESD/junction paths) keep faulted scenarios bounded.
  const double v_rail_hi = config_.vdd - config_.vref_dc;
  const double v_rail_lo = -config_.vref_dc;
  const double g_rail = 2e-3;
  auto rail_current = [&](double v) {
    if (v > v_rail_hi) return -g_rail * (v - v_rail_hi);
    if (v < v_rail_lo) return g_rail * (v_rail_lo - v);
    return 0.0;
  };

  TankState d;
  if (t.pin1_grounded || t.pin1_to_supply) {
    d.v1 = 0.0;  // pin voltage frozen at the short level
  } else {
    d.v1 = (i1 - il + rail_current(s.v1)) / t.config.capacitance1;
  }
  if (t.pin2_grounded) {
    d.v2 = 0.0;
  } else {
    d.v2 = (i2 + il + rail_current(s.v2)) / t.config.capacitance2;
  }
  if (t.loop_open) {
    d.il = 0.0;
  } else {
    d.il = ((s.v1 - s.v2) - t.config.series_resistance * s.il) / t.config.inductance;
  }
  if (slow_driver) {
    d.i1 = (drv.into_lc1 - s.i1) * w_drv;
    d.i2 = (drv.into_lc2 - s.i2) * w_drv;
  }
  return d;
}

OscillatorSystem::RunState OscillatorSystem::begin_run(double duration) {
  LCOSC_REQUIRE(duration > 0.0, "duration must be positive");

  const tank::RlcTank healthy(config_.tank);

  RunState rs;
  rs.duration = duration;
  rs.dt = 1.0 / (healthy.resonance_frequency() * config_.steps_per_period);

  // Re-attach and clear the fault bus (a copied system would otherwise
  // still observe the bus of the instance it was copied from).
  attach_fault_bus();
  fault_bus_.clear();
  for (const TimedEvent& ev : events_) {
    if (const auto* ie = std::get_if<InternalFaultEvent>(&ev.action)) {
      LCOSC_REQUIRE(
          ie->fault.kind != faults::InternalFaultKind::SelfTestStall ||
              config_.step_budget > 0,
          "a stall fault needs a positive step_budget to terminate the run");
    }
  }

  // Reset all subsystems.
  detector_.reset();
  safety_.reset(0.0);
  fsm_.por_reset();
  driver_.set_code(fsm_.code());
  driver_.set_enabled(true);

  rs.active.config = config_.tank;

  rs.s.v1 = 0.5 * config_.startup_kick;
  rs.s.v2 = -0.5 * config_.startup_kick;
  rs.s.il = 0.0;

  rs.result.differential.set_name("v_diff");
  rs.result.v_lc1.set_name("v_lc1");
  rs.result.v_lc2.set_name("v_lc2");
  rs.result.envelope.set_name("envelope");

  rs.record = config_.waveform_decimation > 0;
  rs.total_steps = static_cast<std::size_t>(std::ceil(duration / rs.dt));
  if (rs.record) {
    const std::size_t samples =
        rs.total_steps / static_cast<std::size_t>(config_.waveform_decimation) + 2;
    rs.result.differential.reserve(samples);
    rs.result.v_lc1.reserve(samples);
    rs.result.v_lc2.reserve(samples);
  }

  rs.next_tick = fsm_.config().tick_period;
  rs.env_last_positive = rs.s.v1 - rs.s.v2 >= 0.0;
  return rs;
}

void OscillatorSystem::advance_run(RunState& rs, double stop_time) {
  const double dt = rs.dt;
  TankState& s = rs.s;
  SimulationResult& result = rs.result;

  auto advance = [&](const TankState& base, double h, const TankState& k) {
    return TankState{base.v1 + h * k.v1, base.v2 + h * k.v2, base.il + h * k.il,
                     base.i1 + h * k.i1, base.i2 + h * k.i2};
  };
  auto rk4_step = [&](const ActiveTank& t) {
    const TankState k1 = derivatives(s, t);
    const TankState k2 = derivatives(advance(s, 0.5 * dt, k1), t);
    const TankState k3 = derivatives(advance(s, 0.5 * dt, k2), t);
    const TankState k4 = derivatives(advance(s, dt, k3), t);
    s.v1 += dt / 6.0 * (k1.v1 + 2.0 * k2.v1 + 2.0 * k3.v1 + k4.v1);
    s.v2 += dt / 6.0 * (k1.v2 + 2.0 * k2.v2 + 2.0 * k3.v2 + k4.v2);
    s.il += dt / 6.0 * (k1.il + 2.0 * k2.il + 2.0 * k3.il + k4.il);
    s.i1 += dt / 6.0 * (k1.i1 + 2.0 * k2.i1 + 2.0 * k3.i1 + k4.i1);
    s.i2 += dt / 6.0 * (k1.i2 + 2.0 * k2.i2 + 2.0 * k3.i2 + k4.i2);
  };

  while (rs.step < rs.total_steps) {
    // Pause at the loop top: exactly the position where an event
    // scheduled at stop_time would fire on the next iteration.
    if (rs.t >= stop_time) return;
    ++rs.steps_taken;
    if (config_.step_budget > 0 && rs.steps_taken > config_.step_budget) {
      throw BudgetExceededError("integration step budget exceeded (" +
                                std::to_string(config_.step_budget) + " steps)");
    }
    // Discrete events at the step boundary.
    if (!rs.nvm_applied && rs.t >= fsm_.config().nvm_delay) {
      fsm_.apply_nvm_preset();
      driver_.set_code(fsm_.code());
      rs.nvm_applied = true;
    }
    while (rs.next_event < events_.size() && rs.t >= events_[rs.next_event].time) {
      const ScenarioAction& action = events_[rs.next_event].action;
      if (const auto* fe = std::get_if<FaultEvent>(&action)) {
        const tank::FaultedTank faulted =
            tank::apply_fault(config_.tank, fe->fault, fe->severity);
        rs.active.config = faulted.config;
        rs.active.loop_open = faulted.loop_open;
        rs.active.pin1_grounded = faulted.pin1_grounded;
        rs.active.pin2_grounded = faulted.pin2_grounded;
        rs.active.pin1_to_supply = faulted.pin1_to_supply;
        if (rs.active.loop_open) s.il = 0.0;
        if (rs.active.pin1_grounded) s.v1 = -config_.vref_dc;
        if (rs.active.pin1_to_supply) s.v1 = config_.vdd - config_.vref_dc;
        if (rs.active.pin2_grounded) s.v2 = -config_.vref_dc;
      } else if (std::get_if<RecoveryEvent>(&action)) {
        // Components repaired + diagnostic reset: healthy tank back,
        // detectors cleared, safe-state latch released.  Re-kick the
        // oscillation in case it had fully collapsed.
        rs.active = ActiveTank{};
        rs.active.config = config_.tank;
        safety_.reset(rs.t);
        fsm_.clear_safe_state();
        driver_.set_code(fsm_.code());
        if (std::abs(s.v1 - s.v2) < config_.startup_kick) {
          s.v1 = 0.5 * config_.startup_kick;
          s.v2 = -0.5 * config_.startup_kick;
          s.il = 0.0;
        }
      } else if (const auto* te = std::get_if<TemperatureEvent>(&action)) {
        detector_.set_temperature(te->kelvin);
      } else if (const auto* ie = std::get_if<InternalFaultEvent>(&action)) {
        fault_bus_.inject(ie->fault);
        if (ie->fault.kind == faults::InternalFaultKind::SelfTestThrow) {
          throw ConvergenceError("self-test fault: injected convergence failure at t=" +
                                 std::to_string(rs.t));
        }
      }
      ++rs.next_event;
    }

    if (fault_bus_.stalled()) {
      // Frozen simulation clock: t no longer advances, so the loop can
      // only end through the step budget (enforced above).
      continue;
    }

    rk4_step(rs.active);
    rs.t += dt;

    const double vd = s.v1 - s.v2;
    if (!std::isfinite(vd) || !std::isfinite(s.il)) {
      throw ConvergenceError("tank state diverged (non-finite) at t=" +
                             std::to_string(rs.t));
    }
    detector_.step(dt, s.v1, s.v2);
    safety_.step(rs.t, dt, s.v1, s.v2);

    // Envelope tracking.
    const bool positive = vd >= 0.0;
    if (positive != rs.env_last_positive) {
      if (rs.env_have &&
          (result.envelope.empty() || rs.env_peak_time > result.envelope.end_time())) {
        result.envelope.append(rs.env_peak_time, rs.env_peak);
      }
      rs.env_peak = 0.0;
      rs.env_have = false;
      rs.env_last_positive = positive;
    }
    if (std::abs(vd) >= rs.env_peak) {
      rs.env_peak = std::abs(vd);
      rs.env_peak_time = rs.t;
      rs.env_have = true;
    }

    if (rs.record &&
        rs.step % static_cast<std::size_t>(config_.waveform_decimation) == 0) {
      result.differential.append(rs.t, vd);
      result.v_lc1.append(rs.t, s.v1);
      result.v_lc2.append(rs.t, s.v2);
    }

    // Regulation tick every 1 ms.
    if (rs.t >= rs.next_tick) {
      if (safety_.safe_state_requested()) {
        fsm_.enter_safe_state();
      } else {
        fsm_.tick(detector_.window_state());
      }
      driver_.set_code(fsm_.code());

      TickRecord tick;
      tick.time = rs.t;
      tick.code = fsm_.code();
      tick.vdc1 = detector_.vdc1();
      tick.window = detector_.window_state();
      tick.faults = safety_.flags();
      const double amplitude =
          regulation::AmplitudeDetector::vdc1_to_amplitude(detector_.vdc1());
      tick.supply_current = driver_.supply_current(amplitude);
      result.ticks.push_back(tick);

      rs.next_tick += fsm_.config().tick_period;
    }
    ++rs.step;
  }
}

SimulationResult OscillatorSystem::finish_run(RunState& rs) {
  rs.result.final_faults = safety_.flags();
  rs.result.final_code = fsm_.code();
  rs.result.final_mode = fsm_.mode();
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    static obs::Counter& runs = registry.counter("system.runs");
    static obs::Counter& steps = registry.counter("system.steps");
    static obs::Counter& ticks = registry.counter("system.ticks");
    runs.add(1);
    steps.add(rs.total_steps);
    ticks.add(rs.result.ticks.size());
  }
  return std::move(rs.result);
}

SimulationResult OscillatorSystem::run(double duration) {
  LCOSC_SPAN("system.run");
  RunState rs = begin_run(duration);
  advance_run(rs, std::numeric_limits<double>::infinity());
  return finish_run(rs);
}

RunSession::RunSession(const OscillatorSystem& system, double duration)
    : system_(system), state_(system_.begin_run(duration)) {}

RunSession::RunSession(const RunSession& other)
    : system_(other.system_), state_(other.state_) {
  // The copied subsystems still observe the source session's fault bus;
  // repoint them at the copy's own (bit-identical) bus.
  system_.attach_fault_bus();
}

void RunSession::advance_until(double stop_time) {
  system_.advance_run(state_, stop_time);
}

void RunSession::inject_internal_fault(const faults::InternalFault& fault) {
  LCOSC_REQUIRE(state_.next_event >= system_.events_.size(),
                "inject_internal_fault requires a session with no pending events");
  LCOSC_REQUIRE(fault.kind != faults::InternalFaultKind::SelfTestStall ||
                    system_.config_.step_budget > 0,
                "a stall fault needs a positive step_budget to terminate the run");
  system_.events_.push_back({state_.t, InternalFaultEvent{fault}});
}

SimulationResult RunSession::finish() {
  LCOSC_SPAN("system.run_session");
  system_.advance_run(state_, std::numeric_limits<double>::infinity());
  return system_.finish_run(state_);
}

}  // namespace lcosc::system
