#include "system/position_sensor.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::system {

PositionSensor::PositionSensor(PositionSensorConfig config)
    : config_(config), demod_sin_(config.filter_tau), demod_cos_(config.filter_tau) {
  LCOSC_REQUIRE(config_.coupling_gain > 0.0, "coupling gain must be positive");
}

void PositionSensor::step(double dt, double v_excitation, double theta, double noise1,
                          double noise2) {
  // Receiving coil voltages: coupling modulated by the rotor angle.
  const double v_sin = config_.coupling_gain * std::sin(theta) * v_excitation + noise1;
  const double v_cos = config_.coupling_gain * std::cos(theta) * v_excitation + noise2;
  // Synchronous demodulation against the excitation preserves the sign of
  // the coupling, so the full angle range is recoverable.
  demod_sin_.step(dt, v_sin, v_excitation);
  demod_cos_.step(dt, v_cos, v_excitation);
}

double PositionSensor::estimated_angle() const {
  return std::atan2(demod_sin_.output(), demod_cos_.output());
}

void PositionSensor::reset() {
  demod_sin_.reset();
  demod_cos_.reset();
}

}  // namespace lcosc::system
