#include "system/internal_fmea.h"

#include <cmath>
#include <cstdint>

#include "common/parallel.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::system {

namespace {

std::size_t channel_index(faults::DetectionChannel channel) {
  return static_cast<std::size_t>(channel);
}

std::size_t auto_step_budget(const OscillatorSystemConfig& sys_cfg, double duration) {
  const tank::RlcTank healthy(sys_cfg.tank);
  const double dt = 1.0 / (healthy.resonance_frequency() * sys_cfg.steps_per_period);
  return 4 * static_cast<std::size_t>(std::ceil(duration / dt));
}

bool channel_hit(const safety::FaultFlags& flags, faults::DetectionChannel expected) {
  switch (expected) {
    case faults::DetectionChannel::None:
      return !flags.any();
    case faults::DetectionChannel::MissingOscillation:
      return flags.missing_oscillation;
    case faults::DetectionChannel::LowAmplitude:
      return flags.low_amplitude;
    case faults::DetectionChannel::Asymmetry:
      return flags.asymmetry;
    case faults::DetectionChannel::FrequencyOutOfBand:
      return flags.frequency_out_of_band;
  }
  return false;
}

// Result fields of one completed simulation -> row; shared verbatim by
// the serial per-case path and the shared-prefix batched path so the two
// agree bit for bit.
void fill_row(InternalFmeaRow& row, const SimulationResult& sim,
              const InternalFmeaConfig& config) {
  row.observed = sim.final_faults;
  row.detected = sim.final_faults.any();
  row.expected_channel_hit = channel_hit(sim.final_faults, row.expected);
  row.safe_state_entered = sim.final_mode == regulation::RegulationMode::SafeState;
  row.final_code = sim.final_code;

  row.detection_latency.reset();
  for (const auto& tick : sim.ticks) {
    if (tick.time >= config.settle_time && tick.faults.any()) {
      row.detection_latency = tick.time - config.settle_time;
      break;
    }
  }
}

// Undetected downgrade + per-case telemetry, applied once per finished
// row on either execution path.
void finalize_row(InternalFmeaRow& row, const faults::InternalFault& fault) {
  if (row.status.outcome == CaseOutcome::Ok &&
      row.expected != faults::DetectionChannel::None && !row.expected_channel_hit) {
    row.status.outcome = CaseOutcome::Undetected;
  }

  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("campaign.cases").add(1);
    registry.counter("campaign.cases." + to_string(row.status.outcome)).add(1);
    if (row.status.retries > 0) {
      registry.counter("campaign.retries")
          .add(static_cast<std::uint64_t>(row.status.retries));
    }
    if (row.detection_latency.has_value()) {
      static obs::Histogram& latency = registry.histogram(
          "internal_fmea.detection_latency_ms", {0.5, 1, 2, 3, 4, 5, 7.5, 10, 15, 20});
      latency.record(*row.detection_latency * 1e3);
    }
  }
  if (obs::events_enabled()) {
    obs::Event event("campaign.case");
    event.str("campaign", "internal_fmea")
        .str("fault", faults::to_string(fault))
        .str("outcome", to_string(row.status.outcome))
        .integer("retries", row.status.retries)
        .boolean("detected", row.detected);
    if (row.detection_latency.has_value()) {
      event.num("detection_latency_ms", *row.detection_latency * 1e3);
    }
  }
}

}  // namespace

faults::DetectionChannel InternalFmeaRow::observed_channel() const {
  if (observed.missing_oscillation) return faults::DetectionChannel::MissingOscillation;
  if (observed.low_amplitude) return faults::DetectionChannel::LowAmplitude;
  if (observed.asymmetry) return faults::DetectionChannel::Asymmetry;
  if (observed.frequency_out_of_band) return faults::DetectionChannel::FrequencyOutOfBand;
  return faults::DetectionChannel::None;
}

std::size_t InternalFmeaReport::detected_count() const {
  std::size_t n = 0;
  for (const auto& r : rows) {
    if (r.status.completed() && r.detected) ++n;
  }
  return n;
}

std::size_t InternalFmeaReport::completed_count() const {
  std::size_t n = 0;
  for (const auto& r : rows) {
    if (r.status.completed()) ++n;
  }
  return n;
}

std::size_t InternalFmeaReport::error_count() const {
  return rows.size() - completed_count();
}

double InternalFmeaReport::diagnostic_coverage() const {
  const std::size_t completed = completed_count();
  if (completed == 0) return 0.0;
  return static_cast<double>(detected_count()) / static_cast<double>(completed);
}

std::vector<CoverageEntry> InternalFmeaReport::coverage_matrix() const {
  std::vector<CoverageEntry> matrix;
  for (const auto& row : rows) {
    CoverageEntry* entry = nullptr;
    for (auto& e : matrix) {
      if (e.kind == row.fault.kind) {
        entry = &e;
        break;
      }
    }
    if (entry == nullptr) {
      matrix.push_back(CoverageEntry{.kind = row.fault.kind});
      entry = &matrix.back();
    }
    ++entry->total;
    if (!row.status.completed()) {
      ++entry->errors;
    } else {
      ++entry->by_channel[channel_index(row.observed_channel())];
    }
  }
  return matrix;
}

std::vector<std::string> InternalFmeaReport::uncovered_gaps() const {
  std::vector<std::string> gaps;
  for (const auto& row : rows) {
    if (!row.status.completed() || row.detected) continue;
    std::string note = faults::gap_note(row.fault);
    if (note.empty()) note = "no modeled detection channel fired";
    gaps.push_back(faults::to_string(row.fault) + ": " + note);
  }
  return gaps;
}

InternalFmeaRow run_internal_fmea_case(const InternalFmeaConfig& config,
                                       const faults::InternalFault& fault) {
  const double duration = config.settle_time + config.observe_time;

  // Label everything the case emits (trace span, safety/FSM events) with
  // the fault under test so a mixed log remains attributable.
  const std::string label = "internal_fmea:" + faults::to_string(fault);
  const obs::EventContext event_ctx(label);
  const obs::Span span(label);

  InternalFmeaRow row;
  row.fault = fault;
  row.expected = faults::expected_detection(fault);

  row.status = run_guarded_case(
      [&](int attempt) {
        OscillatorSystemConfig sys_cfg = config.system;
        // Retry after a convergence failure with a tightened integrator.
        for (int k = 0; k < attempt; ++k) sys_cfg.steps_per_period *= 2;
        sys_cfg.step_budget = config.step_budget > 0
                                  ? config.step_budget
                                  : auto_step_budget(config.system, duration);

        OscillatorSystem sys(sys_cfg);
        sys.schedule_internal_fault(fault, config.settle_time);
        const SimulationResult sim = sys.run(duration);
        fill_row(row, sim, config);
      },
      config.max_retries, config.retry_backoff);

  finalize_row(row, fault);
  return row;
}

std::vector<faults::InternalFault> internal_fmea_case_list(const InternalFmeaConfig& config) {
  return config.faults.empty() ? faults::internal_fault_list() : config.faults;
}

InternalFmeaRow run_internal_fmea_case_at(const InternalFmeaConfig& config,
                                          std::size_t index) {
  const std::vector<faults::InternalFault> faults = internal_fmea_case_list(config);
  LCOSC_REQUIRE(index < faults.size(), "internal FMEA case index out of range");
  return run_internal_fmea_case(config, faults[index]);
}

std::vector<InternalFmeaRow> run_internal_fmea_cases(const InternalFmeaConfig& config,
                                                     std::size_t first, std::size_t count) {
  const std::vector<faults::InternalFault> faults = internal_fmea_case_list(config);
  LCOSC_REQUIRE(first <= faults.size() && count <= faults.size() - first,
                "internal FMEA case span out of range");
  const double duration = config.settle_time + config.observe_time;

  std::vector<InternalFmeaRow> rows;
  rows.reserve(count);
  if (count == 0) return rows;

  // One healthy settle prefix for the whole span: the attempt-0 system
  // (no events) advanced to the exact loop-top position where a fault
  // scheduled at settle_time would fire.  Every variant then continues on
  // a copy.  If the shared prefix itself cannot be built (invalid system
  // config, divergence or budget exhaustion before settle), every case of
  // the span would fail the same way serially -- run them all through the
  // serial path so status/retries/messages match byte for byte.
  OscillatorSystemConfig sys_cfg = config.system;
  sys_cfg.step_budget = config.step_budget > 0
                            ? config.step_budget
                            : auto_step_budget(config.system, duration);
  std::optional<RunSession> prefix;
  try {
    const obs::Span span("internal_fmea:settle_prefix");
    OscillatorSystem base(sys_cfg);
    prefix.emplace(base, duration);
    prefix->advance_until(config.settle_time);
  } catch (const std::exception&) {
    prefix.reset();
  }

  for (std::size_t i = 0; i < count; ++i) {
    const faults::InternalFault& fault = faults[first + i];
    bool done = false;
    if (prefix.has_value()) {
      const std::string label = "internal_fmea:" + faults::to_string(fault);
      const obs::EventContext event_ctx(label);
      const obs::Span span(label);

      InternalFmeaRow row;
      row.fault = fault;
      row.expected = faults::expected_detection(fault);
      try {
        RunSession session(*prefix);
        session.inject_internal_fault(fault);
        const SimulationResult sim = session.finish();
        fill_row(row, sim, config);
        finalize_row(row, fault);
        rows.push_back(std::move(row));
        done = true;
      } catch (const std::exception&) {
        // Structural divergence on this lane (self-test throw/stall,
        // budget, non-finite state): fall back to the full serial case,
        // which reproduces the guarded retry/timeout handling -- and its
        // telemetry -- exactly.
      }
    }
    if (!done) rows.push_back(run_internal_fmea_case(config, fault));
  }
  return rows;
}

InternalFmeaReport run_internal_fmea_campaign(const InternalFmeaConfig& config) {
  const std::vector<faults::InternalFault> faults = internal_fmea_case_list(config);
  InternalFmeaReport report;
  report.rows = parallel_map(
      faults.size(),
      [&](std::size_t i) { return run_internal_fmea_case(config, faults[i]); },
      config.workers);
  return report;
}

}  // namespace lcosc::system
