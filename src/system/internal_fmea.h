// Internal (on-chip) FMEA campaign: inject every single-point fault of
// the internal taxonomy (src/faults/internal_fault.h) into the running
// system and measure which detection channel actually fires.  The report
// aggregates a fault-kind x detection-channel coverage matrix, the
// diagnostic coverage percentage and the explicit list of uncovered gaps
// (faults no modeled channel observes -- the honest part of the paper's
// safety argument).
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/campaign.h"
#include "faults/internal_fault.h"
#include "system/oscillator_system.h"

namespace lcosc::system {

struct InternalFmeaRow {
  faults::InternalFault fault{};
  faults::DetectionChannel expected{};
  safety::FaultFlags observed{};
  bool detected = false;        // any detector latched
  bool expected_channel_hit = false;
  bool safe_state_entered = false;
  // Fault injection -> first flagged tick; nullopt if never flagged.
  std::optional<double> detection_latency;
  int final_code = 0;
  // Per-case outcome: a throwing or over-budget case yields a
  // SimulationError / Timeout row instead of aborting the campaign.
  CampaignCase status{};

  // Channel that actually latched (priority: missing oscillation, low
  // amplitude, asymmetry, frequency); None when undetected.
  [[nodiscard]] faults::DetectionChannel observed_channel() const;
};

// One coverage-matrix row: cases of one fault kind, bucketed by the
// detection channel that latched (the None bucket holds the undetected
// cases -- the gaps).
struct CoverageEntry {
  faults::InternalFaultKind kind{};
  // Indexed by faults::DetectionChannel (None..FrequencyOutOfBand).
  std::array<std::size_t, 5> by_channel{};
  std::size_t errors = 0;  // SimulationError / Timeout cases
  std::size_t total = 0;
};

struct InternalFmeaReport {
  std::vector<InternalFmeaRow> rows;

  [[nodiscard]] std::size_t detected_count() const;
  [[nodiscard]] std::size_t completed_count() const;  // Ok or Undetected
  [[nodiscard]] std::size_t error_count() const;      // SimulationError/Timeout
  // Detected fraction of the completed cases, in [0,1].
  [[nodiscard]] double diagnostic_coverage() const;
  // Fault-kind x detection-channel matrix over all rows, one entry per
  // distinct kind in campaign order.
  [[nodiscard]] std::vector<CoverageEntry> coverage_matrix() const;
  // Labels of completed-but-undetected faults with their gap notes.
  [[nodiscard]] std::vector<std::string> uncovered_gaps() const;
};

struct InternalFmeaConfig {
  OscillatorSystemConfig system{};
  // Let the oscillator settle before injecting the fault.
  double settle_time = 6e-3;
  // Observation window after the fault.  The slowest expected detection
  // (window comparator stuck high) walks the code down ~1 LSB/ms and then
  // needs the 3 ms low-amplitude persistence, so the default leaves room.
  double observe_time = 25e-3;
  // Faults to inject; empty = faults::internal_fault_list().
  std::vector<faults::InternalFault> faults;
  // Worker threads: 0 = default_worker_count(), 1 = serial.  The report
  // is identical for any value.
  std::size_t workers = 0;
  // Bounded retry for ConvergenceError cases (tightened integrator).
  int max_retries = 1;
  // Exponential backoff between those re-runs; disabled by default, which
  // keeps the retry policy (and report bytes) identical to no-backoff.
  RetryBackoff retry_backoff{};
  // Per-case integration step budget; 0 = auto (4x nominal step count).
  std::size_t step_budget = 0;
};

[[nodiscard]] InternalFmeaReport run_internal_fmea_campaign(const InternalFmeaConfig& config);

[[nodiscard]] InternalFmeaRow run_internal_fmea_case(const InternalFmeaConfig& config,
                                                     const faults::InternalFault& fault);

// Case-index view for the sharded campaign service (common/campaign.h):
// the effective fault list (config.faults, or the standard taxonomy list
// when empty) indexed in campaign order.
[[nodiscard]] std::vector<faults::InternalFault> internal_fmea_case_list(
    const InternalFmeaConfig& config);
[[nodiscard]] InternalFmeaRow run_internal_fmea_case_at(const InternalFmeaConfig& config,
                                                        std::size_t index);

// Contiguous case span [first, first + count) through the batched path:
// the variants share one healthy settle prefix (an
// RunSession advanced to settle_time once), and each
// fault runs on a copy of that paused session -- per-copy FaultBus, no
// re-simulated startup.  A case whose continuation throws (self-test
// faults, budget/stall, divergence) falls back to the full serial
// run_internal_fmea_case, so every row -- status, retries, error message
// -- is byte-identical to per-case execution.
[[nodiscard]] std::vector<InternalFmeaRow> run_internal_fmea_cases(
    const InternalFmeaConfig& config, std::size_t first, std::size_t count);

}  // namespace lcosc::system
