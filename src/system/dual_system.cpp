#include "system/dual_system.h"

#include <array>
#include <cmath>

#include "common/error.h"

namespace lcosc::system {

double DualRunResult::mean_envelope1(double t0, double t1) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < envelope1.size(); ++i) {
    if (envelope1.time(i) >= t0 && envelope1.time(i) <= t1) {
      acc += envelope1.value(i);
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

DualSystem::DualSystem(DualSystemConfig config)
    : config_(config),
      coils_(config.tanks),
      driver1_(config.driver),
      driver2_(config.driver),
      detector1_(config.detector),
      detector2_(config.detector),
      fsm1_(config.regulation),
      fsm2_(config.regulation) {
  LCOSC_REQUIRE(config_.steps_per_period >= 16, "need at least 16 steps per period");
}

void DualSystem::schedule_supply_loss(double at_time, PwlTable dead_chip_iv) {
  LCOSC_REQUIRE(at_time >= 0.0, "event time must be non-negative");
  supply_loss_time_ = at_time;
  dead_iv_ = std::move(dead_chip_iv);
}

DualRunResult DualSystem::run(double duration) {
  LCOSC_REQUIRE(duration > 0.0, "duration must be positive");

  const tank::TankConfig& t1 = config_.tanks.tank1;
  const tank::TankConfig& t2 = config_.tanks.tank2;
  const double f0 = tank::RlcTank(t1).resonance_frequency();
  const double dt = 1.0 / (f0 * config_.steps_per_period);

  fsm1_.por_reset();
  fsm2_.por_reset();
  driver1_.set_code(fsm1_.code());
  driver2_.set_code(fsm2_.code());
  driver1_.set_enabled(true);
  driver2_.set_enabled(true);
  detector1_.reset();
  detector2_.reset();

  // State: v11, v21, il1, v12, v22, il2.
  std::array<double, 6> s{0.5 * config_.startup_kick, -0.5 * config_.startup_kick, 0.0,
                          0.45 * config_.startup_kick, -0.45 * config_.startup_kick, 0.0};

  bool system2_dead = false;

  auto derivatives = [&](const std::array<double, 6>& x) {
    std::array<double, 6> d{};
    const double vd1 = x[0] - x[1];
    const double vd2 = x[3] - x[4];

    const driver::NodeCurrents drv1 = driver1_.output(x[0], x[1]);
    driver::NodeCurrents drv2{};
    double dead_i1 = 0.0;  // current absorbed at system 2's LC1 pin
    if (system2_dead) {
      dead_i1 = dead_iv_(vd2);
    } else {
      drv2 = driver2_.output(x[3], x[4]);
    }

    // Inductor loop voltages (coil terminal voltage minus series loss).
    const double vl1 = vd1 - t1.series_resistance * x[2];
    const double vl2 = vd2 - t2.series_resistance * x[5];
    const auto dil = coils_.current_derivatives(vl1, vl2);

    d[0] = (drv1.into_lc1 - x[2]) / t1.capacitance1;
    d[1] = (drv1.into_lc2 + x[2]) / t1.capacitance2;
    d[2] = dil[0];
    d[3] = (drv2.into_lc1 - dead_i1 - x[5]) / t2.capacitance1;
    d[4] = (drv2.into_lc2 + dead_i1 + x[5]) / t2.capacitance2;
    d[5] = dil[1];
    return d;
  };

  DualRunResult result;
  result.envelope1.set_name("envelope1");
  result.envelope2.set_name("envelope2");
  result.differential1.set_name("v_diff1");
  result.differential2.set_name("v_diff2");
  result.event_time = supply_loss_time_.value_or(-1.0);
  const bool record = config_.waveform_decimation > 0;

  // Per-system inline envelope trackers.
  struct EnvTracker {
    double peak = 0.0;
    double peak_time = 0.0;
    bool have = false;
    bool last_positive = true;
  };
  std::array<EnvTracker, 2> env;

  auto track = [&](EnvTracker& e, Trace& out, double t, double vd) {
    const bool positive = vd >= 0.0;
    if (positive != e.last_positive) {
      if (e.have && (out.empty() || e.peak_time > out.end_time())) {
        out.append(e.peak_time, e.peak);
      }
      e.peak = 0.0;
      e.have = false;
      e.last_positive = positive;
    }
    if (std::abs(vd) >= e.peak) {
      e.peak = std::abs(vd);
      e.peak_time = t;
      e.have = true;
    }
  };

  bool nvm1 = false;
  bool nvm2 = false;
  double next_tick = fsm1_.config().tick_period;
  const std::size_t total_steps = static_cast<std::size_t>(std::ceil(duration / dt));

  double t = 0.0;
  for (std::size_t step = 0; step < total_steps; ++step) {
    if (!nvm1 && t >= fsm1_.config().nvm_delay) {
      fsm1_.apply_nvm_preset();
      driver1_.set_code(fsm1_.code());
      nvm1 = true;
    }
    if (!nvm2 && t >= fsm2_.config().nvm_delay) {
      fsm2_.apply_nvm_preset();
      driver2_.set_code(fsm2_.code());
      nvm2 = true;
    }
    if (supply_loss_time_ && !system2_dead && t >= *supply_loss_time_) {
      system2_dead = true;
      driver2_.set_enabled(false);
      LCOSC_REQUIRE(!dead_iv_.empty(), "supply loss scheduled without a dead-chip I-V table");
    }

    // RK4 over the coupled 6-state system.
    const auto k1 = derivatives(s);
    std::array<double, 6> mid{};
    for (std::size_t i = 0; i < 6; ++i) mid[i] = s[i] + 0.5 * dt * k1[i];
    const auto k2 = derivatives(mid);
    for (std::size_t i = 0; i < 6; ++i) mid[i] = s[i] + 0.5 * dt * k2[i];
    const auto k3 = derivatives(mid);
    std::array<double, 6> end{};
    for (std::size_t i = 0; i < 6; ++i) end[i] = s[i] + dt * k3[i];
    const auto k4 = derivatives(end);
    for (std::size_t i = 0; i < 6; ++i) {
      s[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    t += dt;

    detector1_.step(dt, s[0], s[1]);
    if (!system2_dead) detector2_.step(dt, s[3], s[4]);

    track(env[0], result.envelope1, t, s[0] - s[1]);
    track(env[1], result.envelope2, t, s[3] - s[4]);

    if (record && step % static_cast<std::size_t>(config_.waveform_decimation) == 0) {
      result.differential1.append(t, s[0] - s[1]);
      result.differential2.append(t, s[3] - s[4]);
    }

    if (t >= next_tick) {
      fsm1_.tick(detector1_.window_state());
      driver1_.set_code(fsm1_.code());
      result.codes1.push_back(fsm1_.code());
      if (!system2_dead) {
        fsm2_.tick(detector2_.window_state());
        driver2_.set_code(fsm2_.code());
      }
      result.codes2.push_back(system2_dead ? -1 : fsm2_.code());
      next_tick += fsm1_.config().tick_period;
    }
  }
  return result;
}

}  // namespace lcosc::system
