#include "system/tolerance_analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/error.h"
#include "common/parallel.h"
#include "common/random.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"
#include "system/batched_envelope.h"

namespace lcosc::system {

double ToleranceReport::yield() const {
  if (samples.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& s : samples) {
    if (s.in_window) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(samples.size());
}

std::size_t ToleranceReport::error_count() const {
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (!s.status.completed()) ++n;
  }
  return n;
}

namespace {

// Extremum over the completed samples only.  A failed sample carries
// zero-initialized result fields (amplitude 0, code 0, supply 0); folding
// those into min/max/percentiles poisons the extrema of an otherwise
// healthy report, and an all-failed report has no meaningful extremum at
// all -- hence the REQUIRE on at least one completed sample.
template <typename T, typename Get, typename Fold>
T fold_completed(const std::vector<ToleranceSample>& samples, const char* what, Get get,
                 Fold fold) {
  bool found = false;
  T v{};
  for (const auto& s : samples) {
    if (!s.status.completed()) continue;
    v = found ? fold(v, get(s)) : get(s);
    found = true;
  }
  LCOSC_REQUIRE(found, std::string(what) + " requires at least one completed sample");
  return v;
}

}  // namespace

double ToleranceReport::min_amplitude() const {
  return fold_completed<double>(
      samples, "min_amplitude", [](const ToleranceSample& s) { return s.settled_amplitude; },
      [](double a, double b) { return std::min(a, b); });
}

double ToleranceReport::max_amplitude() const {
  return fold_completed<double>(
      samples, "max_amplitude", [](const ToleranceSample& s) { return s.settled_amplitude; },
      [](double a, double b) { return std::max(a, b); });
}

int ToleranceReport::min_code() const {
  return fold_completed<int>(
      samples, "min_code", [](const ToleranceSample& s) { return s.settled_code; },
      [](int a, int b) { return std::min(a, b); });
}

int ToleranceReport::max_code() const {
  return fold_completed<int>(
      samples, "max_code", [](const ToleranceSample& s) { return s.settled_code; },
      [](int a, int b) { return std::max(a, b); });
}

double ToleranceReport::max_supply_current() const {
  return fold_completed<double>(
      samples, "max_supply_current", [](const ToleranceSample& s) { return s.supply_current; },
      [](double a, double b) { return std::max(a, b); });
}

SummaryStatistics ToleranceReport::amplitude_statistics() const {
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.status.completed()) values.push_back(s.settled_amplitude);
  }
  LCOSC_REQUIRE(!values.empty(),
                "amplitude_statistics requires at least one completed sample");
  return summarize(std::move(values));
}

SummaryStatistics ToleranceReport::supply_statistics() const {
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.status.completed()) values.push_back(s.supply_current);
  }
  LCOSC_REQUIRE(!values.empty(),
                "supply_statistics requires at least one completed sample");
  return summarize(std::move(values));
}

namespace {

// The sampled per-case system.  draw_case is the single place both
// engines draw from: a case's sampled (L, C1, C2, Rs) and DAC-mismatch
// seed depend only on (campaign seed, case index) -- never on execution
// order, worker count, batch size, or engine (locked by the
// ToleranceSeeding tests).  The master Rng is never advanced; every case
// forks its own stream.
struct CaseDraw {
  EnvelopeSimConfig cfg{};
  std::uint64_t dac_seed = 0;
};

CaseDraw draw_case(const Rng& master, int i, const ToleranceConfig& config) {
  Rng rng = master.fork(static_cast<std::uint64_t>(i) + 1);

  CaseDraw draw;
  draw.cfg = config.nominal;
  draw.cfg.tank.inductance *= 1.0 + rng.uniform(-config.inductance_tolerance,
                                                config.inductance_tolerance);
  draw.cfg.tank.capacitance1 *= 1.0 + rng.uniform(-config.capacitance_tolerance,
                                                  config.capacitance_tolerance);
  draw.cfg.tank.capacitance2 *= 1.0 + rng.uniform(-config.capacitance_tolerance,
                                                  config.capacitance_tolerance);
  draw.cfg.tank.series_resistance *= 1.0 + rng.uniform(-config.resistance_tolerance,
                                                       config.resistance_tolerance);
  if (config.include_dac_mismatch) {
    draw.dac_seed = master.fork(static_cast<std::uint64_t>(0x1000 + i))();
  }
  return draw;
}

void record_sample_telemetry(int i, const ToleranceSample& sample) {
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("campaign.cases").add(1);
    registry.counter("campaign.cases." + to_string(sample.status.outcome)).add(1);
    if (sample.status.retries > 0) {
      registry.counter("campaign.retries")
          .add(static_cast<std::uint64_t>(sample.status.retries));
    }
  }
  if (obs::events_enabled()) {
    obs::Event event("campaign.case");
    event.str("campaign", "tolerance")
        .integer("sample", i)
        .str("outcome", to_string(sample.status.outcome))
        .integer("retries", sample.status.retries)
        .boolean("in_window", sample.in_window);
    if (sample.status.completed()) {
      event.num("settled_amplitude", sample.settled_amplitude)
          .integer("settled_code", sample.settled_code);
    }
  }
}

// One case through its own EnvelopeSimulator: the bit-exact reference,
// and the fallback for batched lanes that diverge (reproducing the
// retry-with-halved-dt semantics exactly).
ToleranceSample run_serial_sample(const Rng& master, int i, const ToleranceConfig& config,
                                  double target) {
  const std::string label = "tolerance:sample_" + std::to_string(i);
  const obs::EventContext event_ctx(label);
  const obs::Span span(label);

  ToleranceSample sample;
  sample.status = run_guarded_case(
      [&](int attempt) {
        // Re-draw per attempt: the draws stay identical, so a retry only
        // tightens the integrator.
        CaseDraw draw = draw_case(master, i, config);
        EnvelopeSimConfig cfg = draw.cfg;
        // Retry after a convergence failure with a halved time step.
        for (int k = 0; k < attempt; ++k) cfg.dt *= 0.5;

        EnvelopeSimulator sim(cfg);
        if (config.include_dac_mismatch) {
          sim.driver().use_mismatched_dac(std::make_shared<const dac::CurrentLimitationDac>(
              cfg.driver.unit_current, config.mismatch, draw.dac_seed));
        }
        const EnvelopeRunResult run = sim.run(config.run_duration);

        const tank::RlcTank tk(cfg.tank);
        sample.tank = cfg.tank;
        sample.resonance_frequency = tk.resonance_frequency();
        sample.quality_factor = tk.quality_factor();
        sample.settled_code = run.final_code;
        sample.settled_amplitude = run.settled_amplitude();
        sample.supply_current = run.ticks.empty() ? 0.0 : run.ticks.back().supply_current;
        sample.in_window = std::abs(sample.settled_amplitude - target) <=
                           config.amplitude_tolerance * target;
      },
      config.max_retries, config.retry_backoff);
  if (!sample.status.completed()) sample.in_window = false;
  record_sample_telemetry(i, sample);
  return sample;
}

// One contiguous span [lo, hi) through a single batched-engine
// invocation.  The caller cuts spans at global chunk boundaries; the
// lanes are arithmetically independent, so the numbers of a lane depend
// only on its global case index -- never on which other lanes share the
// invocation.
std::vector<ToleranceSample> run_batched_span(const Rng& master, const ToleranceConfig& config,
                                              double target, std::size_t lo, std::size_t hi) {
  const std::string label = "tolerance:batch_" + std::to_string(lo / config.chunk_lanes);
  const obs::EventContext event_ctx(label);
  const obs::Span span(label);

  std::vector<CaseDraw> draws;
  std::vector<BatchedEnvelopeLane> lanes;
  draws.reserve(hi - lo);
  lanes.reserve(hi - lo);
  for (std::size_t idx = lo; idx < hi; ++idx) {
    draws.push_back(draw_case(master, static_cast<int>(idx), config));
    BatchedEnvelopeLane lane;
    lane.config = draws.back().cfg;
    if (config.include_dac_mismatch) {
      lane.mismatch_dac = std::make_shared<const dac::CurrentLimitationDac>(
          lane.config.driver.unit_current, config.mismatch, draws.back().dac_seed);
    }
    lanes.push_back(std::move(lane));
  }
  const std::vector<BatchedLaneResult> results =
      run_batched_envelope(lanes, config.run_duration);

  std::vector<ToleranceSample> out(hi - lo);
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const std::size_t l = idx - lo;
    const BatchedLaneResult& r = results[l];
    if (r.setup_failed || r.diverged) {
      // The serial path throws here (invalid config / divergence):
      // replay the case serially so the recorded outcome -- error
      // message, retries, halved-dt re-runs -- matches byte for
      // byte.
      out[l] = run_serial_sample(master, static_cast<int>(idx), config, target);
      continue;
    }
    ToleranceSample& sample = out[l];
    const tank::RlcTank tk(draws[l].cfg.tank);
    sample.tank = draws[l].cfg.tank;
    sample.resonance_frequency = tk.resonance_frequency();
    sample.quality_factor = tk.quality_factor();
    sample.settled_code = r.final_code;
    sample.settled_amplitude = r.settled_amplitude;
    sample.supply_current = r.supply_current;
    sample.in_window = std::abs(sample.settled_amplitude - target) <=
                       config.amplitude_tolerance * target;
    record_sample_telemetry(static_cast<int>(idx), sample);
  }
  return out;
}

void require_chunk_lanes(const ToleranceConfig& config) {
  LCOSC_REQUIRE(config.chunk_lanes >= kMinChunkLanes && config.chunk_lanes <= kMaxChunkLanes,
                "chunk_lanes must be in [1, 4096]");
}

// Lockstep sweep: contiguous chunk_lanes-sized chunks of cases go through
// the batched envelope engine.  The chunk grid is anchored at global case
// index 0 (never derived from the worker count or a shard offset) and
// every lane's numbers are pure in the case index, so the report is
// byte-identical for any `workers`, any `chunk_lanes` -- and to the
// serial engine.
std::vector<ToleranceSample> run_batched_sweep(const Rng& master, const ToleranceConfig& config,
                                               double target) {
  const auto n = static_cast<std::size_t>(config.samples);
  const std::size_t batches = (n + config.chunk_lanes - 1) / config.chunk_lanes;

  auto chunks = parallel_map(
      batches,
      [&](std::size_t b) {
        const std::size_t lo = b * config.chunk_lanes;
        const std::size_t hi = std::min(n, lo + config.chunk_lanes);
        return run_batched_span(master, config, target, lo, hi);
      },
      config.workers);

  std::vector<ToleranceSample> samples;
  samples.reserve(n);
  for (auto& chunk : chunks) {
    for (auto& sample : chunk) samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace

ToleranceSample run_tolerance_sample(const ToleranceConfig& config, int index) {
  LCOSC_REQUIRE(index >= 0 && index < config.samples, "sample index out of range");
  const Rng master(config.seed);
  return run_serial_sample(master, index, config, config.nominal.detector.target_amplitude);
}

std::vector<ToleranceSample> run_tolerance_samples(const ToleranceConfig& config,
                                                   std::size_t first, std::size_t count) {
  const auto n = static_cast<std::size_t>(config.samples);
  LCOSC_REQUIRE(config.samples > 0, "sample count must be positive");
  LCOSC_REQUIRE(first <= n && count <= n - first, "sample span out of range");
  require_chunk_lanes(config);

  const Rng master(config.seed);
  const double target = config.nominal.detector.target_amplitude;
  const bool batched =
      config.engine == ToleranceEngine::Batched && !config.nominal.adaptive;

  std::vector<ToleranceSample> samples;
  samples.reserve(count);
  if (!batched) {
    for (std::size_t i = 0; i < count; ++i) {
      samples.push_back(run_serial_sample(master, static_cast<int>(first + i), config, target));
    }
    return samples;
  }
  // Cut the span at GLOBAL chunk boundaries (sample i belongs to chunk
  // i / chunk_lanes): a span that starts mid-chunk -- e.g. a resumed
  // shard whose predecessor checkpointed half a chunk -- still advances
  // through the same chunk grid as the full sweep.
  std::size_t lo = first;
  const std::size_t end = first + count;
  while (lo < end) {
    const std::size_t chunk_end = (lo / config.chunk_lanes + 1) * config.chunk_lanes;
    const std::size_t hi = std::min(end, chunk_end);
    std::vector<ToleranceSample> piece = run_batched_span(master, config, target, lo, hi);
    for (auto& sample : piece) samples.push_back(std::move(sample));
    lo = hi;
  }
  return samples;
}

ToleranceReport run_tolerance_analysis(const ToleranceConfig& config) {
  LCOSC_REQUIRE(config.samples > 0, "sample count must be positive");
  LCOSC_REQUIRE(config.inductance_tolerance >= 0.0 && config.inductance_tolerance < 1.0 &&
                    config.capacitance_tolerance >= 0.0 &&
                    config.capacitance_tolerance < 1.0 &&
                    config.resistance_tolerance >= 0.0 && config.resistance_tolerance < 1.0,
                "tolerances must be in [0,1)");
  require_chunk_lanes(config);

  const Rng master(config.seed);
  const double target = config.nominal.detector.target_amplitude;

  // Adaptive nominal configs route to the serial path: the lockstep
  // engine is fixed-step only.
  const bool batched =
      config.engine == ToleranceEngine::Batched && !config.nominal.adaptive;

  ToleranceReport report;
  if (batched) {
    report.samples = run_batched_sweep(master, config, target);
    return report;
  }
  report.samples = parallel_map(
      static_cast<std::size_t>(config.samples),
      [&](std::size_t idx) {
        return run_serial_sample(master, static_cast<int>(idx), config, target);
      },
      config.workers);
  return report;
}

}  // namespace lcosc::system
