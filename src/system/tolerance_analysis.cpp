#include "system/tolerance_analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/error.h"
#include "common/parallel.h"
#include "common/random.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::system {

double ToleranceReport::yield() const {
  if (samples.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& s : samples) {
    if (s.in_window) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(samples.size());
}

std::size_t ToleranceReport::error_count() const {
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (!s.status.completed()) ++n;
  }
  return n;
}

double ToleranceReport::min_amplitude() const {
  LCOSC_REQUIRE(!samples.empty(), "min_amplitude on an empty report");
  double v = samples.front().settled_amplitude;
  for (const auto& s : samples) v = std::min(v, s.settled_amplitude);
  return v;
}

double ToleranceReport::max_amplitude() const {
  LCOSC_REQUIRE(!samples.empty(), "max_amplitude on an empty report");
  double v = samples.front().settled_amplitude;
  for (const auto& s : samples) v = std::max(v, s.settled_amplitude);
  return v;
}

int ToleranceReport::min_code() const {
  LCOSC_REQUIRE(!samples.empty(), "min_code on an empty report");
  int v = samples.front().settled_code;
  for (const auto& s : samples) v = std::min(v, s.settled_code);
  return v;
}

int ToleranceReport::max_code() const {
  LCOSC_REQUIRE(!samples.empty(), "max_code on an empty report");
  int v = samples.front().settled_code;
  for (const auto& s : samples) v = std::max(v, s.settled_code);
  return v;
}

double ToleranceReport::max_supply_current() const {
  LCOSC_REQUIRE(!samples.empty(), "max_supply_current on an empty report");
  double v = samples.front().supply_current;
  for (const auto& s : samples) v = std::max(v, s.supply_current);
  return v;
}

SummaryStatistics ToleranceReport::amplitude_statistics() const {
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(s.settled_amplitude);
  return summarize(std::move(values));
}

SummaryStatistics ToleranceReport::supply_statistics() const {
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(s.supply_current);
  return summarize(std::move(values));
}

ToleranceReport run_tolerance_analysis(const ToleranceConfig& config) {
  LCOSC_REQUIRE(config.samples > 0, "sample count must be positive");
  LCOSC_REQUIRE(config.inductance_tolerance >= 0.0 && config.inductance_tolerance < 1.0 &&
                    config.capacitance_tolerance >= 0.0 &&
                    config.capacitance_tolerance < 1.0 &&
                    config.resistance_tolerance >= 0.0 && config.resistance_tolerance < 1.0,
                "tolerances must be in [0,1)");

  // Every sample forks its own stream from the (never advanced) master,
  // so the per-index work is pure and the report is byte-identical for
  // any worker count.
  const Rng master(config.seed);
  const double target = config.nominal.detector.target_amplitude;

  ToleranceReport report;
  report.samples = parallel_map(
      static_cast<std::size_t>(config.samples),
      [&](std::size_t idx) {
        const int i = static_cast<int>(idx);

        const std::string label = "tolerance:sample_" + std::to_string(i);
        const obs::EventContext event_ctx(label);
        const obs::Span span(label);

        ToleranceSample sample;
        sample.status = run_guarded_case(
            [&](int attempt) {
              // Re-fork the stream per attempt: the draws stay identical,
              // so a retry only tightens the integrator.
              Rng rng = master.fork(static_cast<std::uint64_t>(i) + 1);

              EnvelopeSimConfig cfg = config.nominal;
              cfg.tank.inductance *= 1.0 + rng.uniform(-config.inductance_tolerance,
                                                       config.inductance_tolerance);
              cfg.tank.capacitance1 *= 1.0 + rng.uniform(-config.capacitance_tolerance,
                                                         config.capacitance_tolerance);
              cfg.tank.capacitance2 *= 1.0 + rng.uniform(-config.capacitance_tolerance,
                                                         config.capacitance_tolerance);
              cfg.tank.series_resistance *= 1.0 + rng.uniform(-config.resistance_tolerance,
                                                              config.resistance_tolerance);
              // Retry after a convergence failure with a halved time step.
              for (int k = 0; k < attempt; ++k) cfg.dt *= 0.5;

              EnvelopeSimulator sim(cfg);
              if (config.include_dac_mismatch) {
                sim.driver().use_mismatched_dac(
                    std::make_shared<const dac::CurrentLimitationDac>(
                        cfg.driver.unit_current, config.mismatch, master.fork(0x1000 + i)()));
              }
              const EnvelopeRunResult run = sim.run(config.run_duration);

              const tank::RlcTank tk(cfg.tank);
              sample.tank = cfg.tank;
              sample.resonance_frequency = tk.resonance_frequency();
              sample.quality_factor = tk.quality_factor();
              sample.settled_code = run.final_code;
              sample.settled_amplitude = run.settled_amplitude();
              sample.supply_current =
                  run.ticks.empty() ? 0.0 : run.ticks.back().supply_current;
              sample.in_window = std::abs(sample.settled_amplitude - target) <=
                                 config.amplitude_tolerance * target;
            },
            config.max_retries);
        if (!sample.status.completed()) sample.in_window = false;

        if (obs::metrics_enabled()) {
          auto& registry = obs::MetricsRegistry::instance();
          registry.counter("campaign.cases").add(1);
          registry.counter("campaign.cases." + to_string(sample.status.outcome)).add(1);
          if (sample.status.retries > 0) {
            registry.counter("campaign.retries")
                .add(static_cast<std::uint64_t>(sample.status.retries));
          }
        }
        if (obs::events_enabled()) {
          obs::Event event("campaign.case");
          event.str("campaign", "tolerance")
              .integer("sample", i)
              .str("outcome", to_string(sample.status.outcome))
              .integer("retries", sample.status.retries)
              .boolean("in_window", sample.in_window);
          if (sample.status.completed()) {
            event.num("settled_amplitude", sample.settled_amplitude)
                .integer("settled_code", sample.settled_code);
          }
        }
        return sample;
      },
      config.workers);
  return report;
}

}  // namespace lcosc::system
