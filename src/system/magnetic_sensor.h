// Physically modeled position sensor: the regulated excitation tank plus
// two receiving coils, all coupled through the full 3x3 inductance matrix
// (rotor-angle-dependent couplings).  This replaces the behavioral
// `PositionSensor` coupling gain with real magnetics: the receiving-coil
// EMFs emerge from M * di/dt, and the demodulated channel amplitudes are
// k * A * sqrt(L_rx / L_exc) as electromagnetic theory requires.
#pragma once

#include "devices/rectifier.h"
#include "driver/oscillator_driver.h"
#include "regulation/amplitude_detector.h"
#include "regulation/regulation_fsm.h"
#include "tank/inductance_matrix.h"
#include "tank/rlc_tank.h"
#include "waveform/trace.h"

namespace lcosc::system {

struct MagneticSensorConfig {
  tank::TankConfig tank{};                 // excitation tank
  driver::DriverConfig driver{};
  regulation::AmplitudeDetectorConfig detector{};
  regulation::RegulationConfig regulation{};

  // Receiving coils.
  double receive_inductance = 1.0e-6;      // each receiving coil [H]
  double receive_resistance = 2.0;         // coil winding loss [ohm]
  // Sense load [ohm].  Kept comparable to the coil reactance so the
  // receiving-coil pole (L/R) stays resolvable by the RF integration step;
  // a current-sensing frontend (low input impedance) behaves this way.
  double load_resistance = 100.0;
  // Peak coupling factor from the excitation coil (modulated by the
  // rotor: k1 = k sin(theta), k2 = k cos(theta)).
  double peak_coupling = 0.3;
  // Residual coupling between the two receiving coils.
  double receive_cross_coupling = 0.02;

  double rotor_angle = 0.0;                // [rad]
  double demod_filter_tau = 50e-6;
  int steps_per_period = 64;
  double startup_kick = 50e-3;
};

struct MagneticSensorResult {
  double settled_amplitude = 0.0;  // excitation differential peak
  int final_code = 0;
  double sin_channel = 0.0;        // demodulated receiving-coil outputs
  double cos_channel = 0.0;
  double estimated_angle = 0.0;    // [rad]
  double angle_error = 0.0;        // wrapped
  Trace envelope;                  // excitation envelope
};

class MagneticSensorSystem {
 public:
  explicit MagneticSensorSystem(MagneticSensorConfig config);

  [[nodiscard]] MagneticSensorResult run(double duration);

  // The coupling matrix in use (exposed for tests).
  [[nodiscard]] const tank::InductanceMatrix& magnetics() const { return magnetics_; }

 private:
  [[nodiscard]] static tank::InductanceMatrix build_magnetics(
      const MagneticSensorConfig& config);

  MagneticSensorConfig config_;
  tank::InductanceMatrix magnetics_;
  driver::OscillatorDriver driver_;
  regulation::AmplitudeDetector detector_;
  regulation::RegulationFsm fsm_;
};

}  // namespace lcosc::system
