// FMEA campaign (paper Section 7): inject every external fault class into
// the running system, record which detector fires, whether the safety
// reaction engaged, and compare against the expected detection channel.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "system/oscillator_system.h"
#include "tank/tank_faults.h"

namespace lcosc::system {

struct FmeaRow {
  tank::TankFault fault{};
  tank::DetectionChannel expected{};
  safety::FaultFlags observed{};
  bool detected = false;        // any detector fired
  bool expected_channel_hit = false;
  bool safe_state_entered = false;
  double detection_latency = -1.0;  // fault injection -> first flagged tick
  int final_code = 0;
};

struct FmeaReport {
  std::vector<FmeaRow> rows;
  [[nodiscard]] std::size_t detected_count() const;
  [[nodiscard]] std::size_t expected_channel_count() const;
  [[nodiscard]] bool all_detected() const;
};

struct FmeaCampaignConfig {
  OscillatorSystemConfig system{};
  // Let the oscillator settle before injecting the fault.
  double settle_time = 6e-3;
  // Observation window after the fault.
  double observe_time = 10e-3;
  tank::FaultSeverity severity{};
  // Worker threads for the per-fault sweep: 0 = default_worker_count(),
  // 1 = serial.  The report is identical for any value.
  std::size_t workers = 0;
};

// Run the campaign over all fault classes (excluding TankFault::None,
// which is run once as a control and must stay fault-free).
[[nodiscard]] FmeaReport run_fmea_campaign(const FmeaCampaignConfig& config);

// Run one fault scenario.
[[nodiscard]] FmeaRow run_fmea_case(const FmeaCampaignConfig& config, tank::TankFault fault);

// All injectable fault classes (paper Section 7 list).
[[nodiscard]] std::vector<tank::TankFault> fmea_fault_list();

}  // namespace lcosc::system
