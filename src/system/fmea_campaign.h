// FMEA campaign (paper Section 7): inject every external fault class into
// the running system, record which detector fires, whether the safety
// reaction engaged, and compare against the expected detection channel.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/campaign.h"
#include "system/oscillator_system.h"
#include "tank/tank_faults.h"

namespace lcosc::system {

struct FmeaRow {
  tank::TankFault fault{};
  tank::DetectionChannel expected{};
  safety::FaultFlags observed{};
  bool detected = false;        // any detector fired
  bool expected_channel_hit = false;
  bool safe_state_entered = false;
  // Fault injection -> first flagged tick; nullopt if never flagged.
  std::optional<double> detection_latency;
  int final_code = 0;
  // Per-case outcome: a throwing or over-budget simulation yields a
  // SimulationError / Timeout row instead of aborting the campaign.
  CampaignCase status{};
};

struct FmeaReport {
  std::vector<FmeaRow> rows;
  [[nodiscard]] std::size_t detected_count() const;
  [[nodiscard]] std::size_t expected_channel_count() const;
  [[nodiscard]] bool all_detected() const;
};

struct FmeaCampaignConfig {
  OscillatorSystemConfig system{};
  // Let the oscillator settle before injecting the fault.
  double settle_time = 6e-3;
  // Observation window after the fault.
  double observe_time = 10e-3;
  tank::FaultSeverity severity{};
  // Worker threads for the per-fault sweep: 0 = default_worker_count(),
  // 1 = serial.  The report is identical for any value.
  std::size_t workers = 0;
  // Bounded retry: a ConvergenceError case is re-run this many times with
  // tightened solver options (doubled steps_per_period) before the row is
  // recorded as SimulationError.
  int max_retries = 1;
  // Exponential backoff between those re-runs; disabled by default, which
  // keeps the retry policy (and report bytes) identical to no-backoff.
  RetryBackoff retry_backoff{};
  // Per-case integration step budget; 0 = auto (4x the nominal step count
  // of the run, so a tightened retry still fits).
  std::size_t step_budget = 0;
};

// Run the campaign over all fault classes (excluding TankFault::None,
// which is run once as a control and must stay fault-free).
[[nodiscard]] FmeaReport run_fmea_campaign(const FmeaCampaignConfig& config);

// Run one fault scenario.
[[nodiscard]] FmeaRow run_fmea_case(const FmeaCampaignConfig& config, tank::TankFault fault);

// All injectable fault classes (paper Section 7 list).
[[nodiscard]] std::vector<tank::TankFault> fmea_fault_list();

// Case-index view for the sharded campaign service (common/campaign.h):
// case i is fmea_fault_list()[i], so the enumeration order -- and with it
// every checkpointed record -- is a pure function of the index.
[[nodiscard]] std::size_t fmea_case_count();
[[nodiscard]] FmeaRow run_fmea_case_at(const FmeaCampaignConfig& config, std::size_t index);

}  // namespace lcosc::system
