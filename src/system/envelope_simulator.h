// Envelope-domain simulation of the regulated oscillator: instead of
// resolving every RF cycle, the differential amplitude A(t) is advanced
// with the averaged energy balance
//
//   dA/dt = (I_fund(A) - A / Rp) / (2 * Ceff)
//
// (describing-function drive versus tank loss), the detector low-pass is
// driven by the rectified mean A/pi, and the regulation FSM ticks every
// 1 ms as in silicon.  This runs ~3 orders of magnitude faster than the
// cycle-accurate engine and is pinned to it by property tests; long
// campaigns (ablations, Q sweeps) use it.
#pragma once

#include <vector>

#include "devices/lowpass.h"
#include "driver/oscillator_driver.h"
#include "regulation/amplitude_detector.h"
#include "regulation/regulation_fsm.h"
#include "tank/rlc_tank.h"
#include "waveform/trace.h"

namespace lcosc::system {

struct EnvelopeSimConfig {
  tank::TankConfig tank{};
  driver::DriverConfig driver{};
  regulation::AmplitudeDetectorConfig detector{};
  regulation::RegulationConfig regulation{};
  double dt = 2e-6;             // envelope integration step
  double initial_amplitude = 50e-3;

  // --- adaptive LTE-controlled macro stepping ------------------------------
  //
  // Default OFF: the fixed-dt loop below is unchanged.  When ON, the
  // envelope advances in macro steps of n * dt (n a power of two, n <= 64
  // by default) chosen by step-doubling LTE control, capped so every
  // regulation tick and the NVM preset still land on their exact fixed-grid
  // times.  The amplitude trace is resampled onto the fixed dt grid, so
  // result shapes (sample count, tick times) match the fixed path; only
  // the work drops.  Settled runs coarsen ~50x; fast startup regions fall
  // back to n = 1, which is exactly the fixed step.
  bool adaptive = false;
  // Accept when |lte| <= lte_abstol + lte_reltol * |A|.
  double lte_reltol = 1e-3;
  double lte_abstol = 1e-6;
  // Macro-step ceiling as a multiple of dt (rounded down to a power of
  // two, min 1).
  int max_step_multiple = 64;
};

struct EnvelopeTick {
  double time = 0.0;
  int code = 0;
  double amplitude = 0.0;
  double vdc1 = 0.0;
  double supply_current = 0.0;
};

struct EnvelopeRunResult {
  Trace amplitude;               // A(t), sampled at the envelope step
  std::vector<EnvelopeTick> ticks;
  int final_code = 0;
  // Work counters: envelope macro steps actually advanced (== the fixed
  // grid count when adaptive is off), LTE-rejected trials, and integrator
  // substeps.
  std::size_t macro_steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t substeps = 0;

  [[nodiscard]] double settled_amplitude(double tail_fraction = 0.2) const;
  // Index of the first tick whose amplitude is inside [lo, hi] and stays
  // inside for the rest of the run; -1 if never settles.
  [[nodiscard]] int settling_tick(double lo, double hi) const;
  // Peak-to-peak of the amplitude over the trailing window (steady ripple).
  [[nodiscard]] double steady_ripple(double tail_fraction = 0.2) const;
};

class EnvelopeSimulator {
 public:
  explicit EnvelopeSimulator(EnvelopeSimConfig config);

  [[nodiscard]] driver::OscillatorDriver& driver() { return driver_; }
  [[nodiscard]] const EnvelopeSimConfig& config() const { return config_; }

  [[nodiscard]] EnvelopeRunResult run(double duration);

 private:
  EnvelopeRunResult run_fixed(double duration);
  EnvelopeRunResult run_adaptive(double duration);

  EnvelopeSimConfig config_;
  tank::RlcTank tank_;
  driver::OscillatorDriver driver_;
  regulation::RegulationFsm fsm_;
};

}  // namespace lcosc::system
