// Monte-Carlo tolerance analysis over the external component spread
// (paper abstract: "The driver can be used with a wide range of external
// components parameters").
//
// Each sample draws the tank L, C1, C2 and Rs inside their tolerance
// bands (and optionally a mismatched current-limitation DAC), runs the
// regulated envelope simulation, and records whether the loop settled
// inside the amplitude window with an in-range code.  The yield is the
// fraction of samples that regulate correctly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/campaign.h"
#include "common/statistics.h"
#include "dac/current_mirror.h"
#include "system/envelope_simulator.h"
#include "tank/rlc_tank.h"

namespace lcosc::system {

// Execution engine for the sample sweep.  Batched (the default) advances
// all samples in lockstep through the structure-of-arrays envelope engine
// (DESIGN.md §12); Serial runs each sample through its own
// EnvelopeSimulator.  The two produce byte-identical reports -- the
// serial path is the bit-exact reference the batched path is tested and
// smoke-checked against (tier1.sh).  Adaptive nominal configs always run
// serially (the lockstep engine is fixed-step only).
enum class ToleranceEngine { Serial, Batched };

struct ToleranceConfig {
  // Nominal system.
  EnvelopeSimConfig nominal{};
  // Uniform +- relative tolerances on the external components.
  double inductance_tolerance = 0.10;
  double capacitance_tolerance = 0.10;
  double resistance_tolerance = 0.30;  // coil loss varies most over lot & temp
  // Include on-chip DAC mismatch per sample.
  bool include_dac_mismatch = true;
  dac::MismatchConfig mismatch{};

  int samples = 100;
  std::uint64_t seed = 1;
  double run_duration = 40e-3;
  // Acceptance band around the target amplitude.
  double amplitude_tolerance = 0.10;
  // Worker threads for the sample sweep: 0 = default_worker_count()
  // (LCOSC_THREADS / hardware), 1 = serial.  The report is byte-identical
  // for any value (per-sample Rng streams are forked from the seed).
  std::size_t workers = 0;
  // Bounded retry: a ConvergenceError sample is re-run this many times
  // with a halved envelope time step before the sample is recorded as
  // SimulationError instead of aborting the whole sweep.
  int max_retries = 1;
  // Exponential backoff between those re-runs; disabled by default, which
  // keeps the retry policy (and report bytes) identical to no-backoff.
  RetryBackoff retry_backoff{};
  ToleranceEngine engine = ToleranceEngine::Batched;
  // Lanes advanced per lockstep chunk of the batched engine.  Chunk
  // boundaries are fixed by GLOBAL sample index (sample i belongs to
  // chunk i / chunk_lanes), and the lanes are arithmetically independent,
  // so the value changes wall time and peak memory -- never a report
  // byte.  Bounds [1, 4096] enforced by the run paths.
  std::size_t chunk_lanes = 64;
};

inline constexpr std::size_t kMinChunkLanes = 1;
inline constexpr std::size_t kMaxChunkLanes = 4096;

struct ToleranceSample {
  tank::TankConfig tank{};
  double resonance_frequency = 0.0;
  double quality_factor = 0.0;
  int settled_code = 0;
  double settled_amplitude = 0.0;
  double supply_current = 0.0;
  bool in_window = false;
  // Per-sample outcome: a sample whose simulation throws is recorded as
  // SimulationError (in_window = false) instead of aborting the sweep.
  CampaignCase status{};
};

struct ToleranceReport {
  std::vector<ToleranceSample> samples;

  // yield() of an empty report is 0.  The min/max accessors and the
  // distribution summaries range over COMPLETED samples only -- a failed
  // sample carries zero-initialized result fields that would otherwise
  // poison the extrema -- and require at least one completed sample
  // (LCOSC_REQUIRE): an empty or all-failed (zero-yield) report has no
  // meaningful extremum, so asking for one throws instead of returning a
  // sentinel.
  [[nodiscard]] double yield() const;
  // Samples whose simulation failed (SimulationError / Timeout).
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] double min_amplitude() const;
  [[nodiscard]] double max_amplitude() const;
  [[nodiscard]] int min_code() const;
  [[nodiscard]] int max_code() const;
  [[nodiscard]] double max_supply_current() const;

  // Distribution summaries across the samples.
  [[nodiscard]] SummaryStatistics amplitude_statistics() const;
  [[nodiscard]] SummaryStatistics supply_statistics() const;
};

[[nodiscard]] ToleranceReport run_tolerance_analysis(const ToleranceConfig& config);

// Case-index view for the sharded campaign service (common/campaign.h):
// run sample `index` of the sweep through the serial reference engine.
// Pure in (config, index) -- the per-sample Rng stream is forked from the
// campaign seed by index -- and byte-identical to the sample the full
// sweep produces at that index under either engine (the batched engine
// is locked to the serial one by the ToleranceBatched tests).
[[nodiscard]] ToleranceSample run_tolerance_sample(const ToleranceConfig& config, int index);

// Contiguous span [first, first + count) of the sweep, honouring
// config.engine: the batched engine splits the span at global
// chunk_lanes boundaries and drives each piece through the lockstep SoA
// engine (per-lane serial fallback on setup failure / divergence), the
// serial engine (or an adaptive nominal) loops run_tolerance_sample.
// Sample i of the returned vector is byte-identical to
// run_tolerance_sample(config, first + i) for any span slicing -- this
// is the entry point the sharded campaign service drains chunks through.
[[nodiscard]] std::vector<ToleranceSample> run_tolerance_samples(const ToleranceConfig& config,
                                                                 std::size_t first,
                                                                 std::size_t count);

}  // namespace lcosc::system
