// Shared guarded envelope integrator.
//
// Exponential (log-domain) update of the envelope equation
//   dA/dt = (I_fund(A) - A/Rp) / (2 Ceff) = lambda(A) * A
// over an interval h.  The tank envelope time constant 2 Rp Ceff drops
// below the step for low-Q tanks; the exponential integrator is
// unconditionally stable and exact at the balance point, with
// sub-stepping so each update moves at most ~20% in log amplitude.
//
// Both the serial EnvelopeSimulator and the batched lockstep engine call
// this one template with their own lambda evaluator, so the operation
// sequence -- and therefore every bit of the result -- is shared between
// the two paths (same discipline as the transient solver's reuse_lu
// reference).  Keep the body free of fused-multiply-add-contractible
// `a * b + c` shapes: the serial/batched identity relies on both
// instantiations compiling to the same arithmetic.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace lcosc::system {

// `lambda_of(amp)` evaluates the instantaneous log-amplitude growth rate
// lambda(A) = (I_fund(A)/A - 1/Rp) / (2 Ceff).
template <typename LambdaFn>
double advance_envelope_guarded(LambdaFn&& lambda_of, double a, double h,
                                std::uint64_t& substeps) {
  double remaining = h;
  int guard = 0;
  while (remaining > 0.0 && guard++ < 400) {
    ++substeps;
    const double lam = lambda_of(a);
    // Local sensitivity d(lambda)/d(ln A): the update is explicit Euler
    // in log amplitude, so the step must also respect this slope or it
    // rings (period-2) around the balance point at marginal gm.
    const double eps = 1e-3;
    const double slope = (lambda_of(a * (1.0 + eps)) - lam) / eps;
    double hs = remaining;
    if (std::abs(lam) * hs > 0.2) hs = 0.2 / std::abs(lam);
    if (std::abs(slope) * hs > 0.5) hs = 0.5 / std::abs(slope);
    a = std::clamp(a * std::exp(lam * hs), 1e-9, 1e3);
    remaining -= hs;
  }
  return a;
}

}  // namespace lcosc::system
