// Lockstep batched envelope engine for Monte-Carlo campaigns.
//
// Advances N sampled variants ("lanes") of the regulated oscillator
// through ONE fixed-dt envelope time loop instead of N independent
// EnvelopeSimulator runs.  Per-lane hot state (amplitude, rectified-mean
// input, detector filter) lives in structure-of-arrays channels; the
// per-lane effective Gm port stage -- which the serial path rebuilds from
// the DAC decode on every integrator substep -- is cached per lane and
// refreshed only when that lane's code changes.  All arithmetic flows
// through the same compiled kernels as the serial path
// (advance_envelope_guarded, GmStage::fundamental_current, the LowPass
// update expression), so every lane's numbers are bit-identical to an
// EnvelopeSimulator run of the same config (DESIGN.md §12).
//
// Lanes must share the time grid (dt, tick_period, nvm_delay) and the
// detector filter tau; everything else (tank, driver, DAC mismatch,
// detector thresholds, initial amplitude) varies per lane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dac/current_mirror.h"
#include "system/envelope_simulator.h"

namespace lcosc::system {

// One Monte-Carlo variant for the lockstep engine.
struct BatchedEnvelopeLane {
  EnvelopeSimConfig config{};
  // Optional mismatched current-limitation DAC, applied exactly like the
  // serial path's driver().use_mismatched_dac().
  std::shared_ptr<const dac::CurrentLimitationDac> mismatch_dac;
};

// Per-lane result carrying exactly what campaign code consumes from
// EnvelopeRunResult (settled tail mean, final code, last-tick supply);
// full traces are not materialized, which is what lets the engine scale
// to 10k-variant sweeps.
struct BatchedLaneResult {
  // Lane setup threw (invalid per-lane config): the caller re-runs the
  // case serially to reproduce the serial error handling byte for byte.
  bool setup_failed = false;
  // Amplitude went non-finite mid-run -- where the serial path throws
  // ConvergenceError; the caller's serial fallback reproduces the
  // retry-with-halved-dt semantics.
  bool diverged = false;
  int final_code = 0;
  // Tail mean over the trailing 20% of the run, bit-identical to
  // EnvelopeRunResult::settled_amplitude().
  double settled_amplitude = 0.0;
  // Supply current at the last regulation tick (0 if the run ticks never
  // fired), matching `ticks.back().supply_current`.
  double supply_current = 0.0;
  std::uint64_t substeps = 0;
};

[[nodiscard]] std::vector<BatchedLaneResult> run_batched_envelope(
    const std::vector<BatchedEnvelopeLane>& lanes, double duration);

// Streaming front-end for sweeps too large to materialize: lanes are
// pulled from a factory and pushed to a sink in bounded chunk_lanes-sized
// windows, so a 10,000-variant sweep holds O(chunk_lanes) lane state --
// one window's configs, SoA channels, and online tail/verdict
// accumulators -- never O(total).  Within a window the arithmetic is the
// run_batched_envelope lockstep loop, so every lane's numbers are
// bit-identical to a one-shot batch and to the serial reference
// (DESIGN.md §16).
class BatchedEnvelopeEngine {
 public:
  // Builds lane `index` (called once, just before its window runs).
  using LaneFactory = std::function<BatchedEnvelopeLane(std::size_t index)>;
  // Consumes lane `index`'s result (called once, right after its window
  // finishes, in ascending index order).
  using ResultSink = std::function<void(std::size_t index, const BatchedLaneResult&)>;

  explicit BatchedEnvelopeEngine(std::size_t chunk_lanes);

  [[nodiscard]] std::size_t chunk_lanes() const { return chunk_lanes_; }

  // Stream `total` lanes through the lockstep engine for `duration`
  // seconds of simulated time.  Windows are cut at multiples of
  // chunk_lanes in lane index; the grouping changes peak memory and wall
  // time, never a result bit (lanes are arithmetically independent).
  void run(std::size_t total, double duration, const LaneFactory& factory,
           const ResultSink& sink) const;

 private:
  std::size_t chunk_lanes_;
};

}  // namespace lcosc::system
