// Lockstep batched envelope engine for Monte-Carlo campaigns.
//
// Advances N sampled variants ("lanes") of the regulated oscillator
// through ONE fixed-dt envelope time loop instead of N independent
// EnvelopeSimulator runs.  Per-lane hot state (amplitude, rectified-mean
// input, detector filter) lives in structure-of-arrays channels; the
// per-lane effective Gm port stage -- which the serial path rebuilds from
// the DAC decode on every integrator substep -- is cached per lane and
// refreshed only when that lane's code changes.  All arithmetic flows
// through the same compiled kernels as the serial path
// (advance_envelope_guarded, GmStage::fundamental_current, the LowPass
// update expression), so every lane's numbers are bit-identical to an
// EnvelopeSimulator run of the same config (DESIGN.md §12).
//
// Lanes must share the time grid (dt, tick_period, nvm_delay) and the
// detector filter tau; everything else (tank, driver, DAC mismatch,
// detector thresholds, initial amplitude) varies per lane.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dac/current_mirror.h"
#include "system/envelope_simulator.h"

namespace lcosc::system {

// One Monte-Carlo variant for the lockstep engine.
struct BatchedEnvelopeLane {
  EnvelopeSimConfig config{};
  // Optional mismatched current-limitation DAC, applied exactly like the
  // serial path's driver().use_mismatched_dac().
  std::shared_ptr<const dac::CurrentLimitationDac> mismatch_dac;
};

// Per-lane result carrying exactly what campaign code consumes from
// EnvelopeRunResult (settled tail mean, final code, last-tick supply);
// full traces are not materialized, which is what lets the engine scale
// to 10k-variant sweeps.
struct BatchedLaneResult {
  // Lane setup threw (invalid per-lane config): the caller re-runs the
  // case serially to reproduce the serial error handling byte for byte.
  bool setup_failed = false;
  // Amplitude went non-finite mid-run -- where the serial path throws
  // ConvergenceError; the caller's serial fallback reproduces the
  // retry-with-halved-dt semantics.
  bool diverged = false;
  int final_code = 0;
  // Tail mean over the trailing 20% of the run, bit-identical to
  // EnvelopeRunResult::settled_amplitude().
  double settled_amplitude = 0.0;
  // Supply current at the last regulation tick (0 if the run ticks never
  // fired), matching `ticks.back().supply_current`.
  double supply_current = 0.0;
  std::uint64_t substeps = 0;
};

[[nodiscard]] std::vector<BatchedLaneResult> run_batched_envelope(
    const std::vector<BatchedEnvelopeLane>& lanes, double duration);

}  // namespace lcosc::system
