#include "system/envelope_simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/constants.h"
#include "common/error.h"
#include "devices/comparator.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::system {

double EnvelopeRunResult::settled_amplitude(double tail_fraction) const {
  LCOSC_REQUIRE(!amplitude.empty(), "no amplitude trace");
  const double t0 =
      amplitude.end_time() - tail_fraction * (amplitude.end_time() - amplitude.start_time());
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < amplitude.size(); ++i) {
    if (amplitude.time(i) >= t0) {
      acc += amplitude.value(i);
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

int EnvelopeRunResult::settling_tick(double lo, double hi) const {
  int candidate = -1;
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    const bool inside = ticks[i].amplitude >= lo && ticks[i].amplitude <= hi;
    if (inside && candidate < 0) candidate = static_cast<int>(i);
    if (!inside) candidate = -1;
  }
  return candidate;
}

double EnvelopeRunResult::steady_ripple(double tail_fraction) const {
  LCOSC_REQUIRE(!amplitude.empty(), "no amplitude trace");
  const double t0 =
      amplitude.end_time() - tail_fraction * (amplitude.end_time() - amplitude.start_time());
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t i = 0; i < amplitude.size(); ++i) {
    if (amplitude.time(i) >= t0) {
      lo = std::min(lo, amplitude.value(i));
      hi = std::max(hi, amplitude.value(i));
    }
  }
  return hi > lo ? hi - lo : 0.0;
}

EnvelopeSimulator::EnvelopeSimulator(EnvelopeSimConfig config)
    : config_(config),
      tank_(config.tank),
      driver_(config.driver),
      fsm_(config.regulation) {
  LCOSC_REQUIRE(config_.dt > 0.0, "envelope step must be positive");
  LCOSC_REQUIRE(config_.initial_amplitude > 0.0, "initial amplitude must be positive");
}

EnvelopeRunResult EnvelopeSimulator::run(double duration) {
  LCOSC_SPAN("envelope.run");
  LCOSC_REQUIRE(duration > 0.0, "duration must be positive");

  const double rp = tank_.parallel_resistance();
  const double ceff = tank_.effective_capacitance();

  fsm_.por_reset();
  driver_.set_code(fsm_.code());
  driver_.set_enabled(true);

  regulation::AmplitudeDetector detector(config_.detector);
  devices::LowPassFilter vdc1(config_.detector.filter_tau);

  EnvelopeRunResult result;
  result.amplitude.set_name("amplitude");

  double a = config_.initial_amplitude;
  bool nvm_applied = false;
  const double dt = config_.dt;
  // Index the loop by step count instead of accumulating t += dt: over a
  // 40 ms run at a 2 us step the accumulated sum drifts by ~1e4 ulp,
  // which can drop the final step (and with it the regulation tick that
  // lands exactly on `duration`).  Durations within one part in 1e12 of
  // an integer step count are treated as exact.
  const auto steps =
      static_cast<std::int64_t>(std::ceil(duration / dt * (1.0 - 1e-12)));
  // Tick times are likewise computed as tick_index * tick_period; the
  // same relative slack absorbs the ulp mismatch between the two grids.
  const double tick_period = fsm_.config().tick_period;
  std::int64_t tick_index = 1;
  result.amplitude.reserve(static_cast<std::size_t>(steps) + 2);

  // Engine counters accumulate locally and flush once per run, keeping
  // the per-step loop free of registry traffic.
  std::uint64_t substeps = 0;

  for (std::int64_t step = 0; step < steps; ++step) {
    const double t_step = static_cast<double>(step) * dt;
    if (!nvm_applied && t_step >= fsm_.config().nvm_delay) {
      fsm_.apply_nvm_preset();
      driver_.set_code(fsm_.code());
      nvm_applied = true;
    }

    // Exponential (log-domain) update of the envelope equation
    //   dA/dt = (I_fund(A) - A/Rp) / (2 Ceff) = lambda(A) * A.
    // The tank envelope time constant 2 Rp Ceff drops below the step for
    // low-Q tanks; the exponential integrator is unconditionally stable
    // and exact at the balance point, with sub-stepping so each update
    // moves at most ~20% in log amplitude.
    auto lambda_of = [&](double amp) {
      const double n_eff = driver_.fundamental_port_current(amp) / amp;
      return (n_eff - 1.0 / rp) / (2.0 * ceff);
    };
    double remaining = dt;
    int guard = 0;
    while (remaining > 0.0 && guard++ < 400) {
      ++substeps;
      const double lam = lambda_of(a);
      // Local sensitivity d(lambda)/d(ln A): the update is explicit Euler
      // in log amplitude, so the step must also respect this slope or it
      // rings (period-2) around the balance point at marginal gm.
      const double eps = 1e-3;
      const double slope = (lambda_of(a * (1.0 + eps)) - lam) / eps;
      double h = remaining;
      if (std::abs(lam) * h > 0.2) h = 0.2 / std::abs(lam);
      if (std::abs(slope) * h > 0.5) h = 0.5 / std::abs(slope);
      a = std::clamp(a * std::exp(lam * h), 1e-9, 1e3);
      remaining -= h;
    }
    if (!std::isfinite(a)) {
      throw ConvergenceError("envelope diverged (non-finite amplitude) at t=" +
                             std::to_string(static_cast<double>(step + 1) * dt));
    }
    const double t = static_cast<double>(step + 1) * dt;

    // Detector: rectified mean of the pin swing is A/pi.
    vdc1.step(dt, a / kPi);
    result.amplitude.append(t, a);

    if (t >= static_cast<double>(tick_index) * tick_period * (1.0 - 1e-12)) {
      // Window verdict directly on the filtered VDC1.
      devices::WindowState window = devices::WindowState::Inside;
      if (vdc1.output() < detector.vr3()) window = devices::WindowState::Below;
      else if (vdc1.output() > detector.vr4()) window = devices::WindowState::Above;
      fsm_.tick(window);
      driver_.set_code(fsm_.code());

      EnvelopeTick tick;
      tick.time = t;
      tick.code = fsm_.code();
      tick.amplitude = a;
      tick.vdc1 = vdc1.output();
      tick.supply_current = driver_.supply_current(a);
      result.ticks.push_back(tick);
      ++tick_index;
    }
  }
  result.final_code = fsm_.code();
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    static obs::Counter& runs = registry.counter("envelope.runs");
    static obs::Counter& step_count = registry.counter("envelope.steps");
    static obs::Counter& substep_count = registry.counter("envelope.substeps");
    static obs::Counter& tick_count = registry.counter("envelope.ticks");
    runs.add(1);
    step_count.add(static_cast<std::uint64_t>(steps));
    substep_count.add(substeps);
    tick_count.add(result.ticks.size());
  }
  return result;
}

}  // namespace lcosc::system
