#include "system/envelope_simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/constants.h"
#include "common/error.h"
#include "devices/comparator.h"
#include "numeric/interpolate.h"
#include "system/envelope_kernel.h"
#include "numeric/step_control.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::system {

double EnvelopeRunResult::settled_amplitude(double tail_fraction) const {
  LCOSC_REQUIRE(!amplitude.empty(), "no amplitude trace");
  const double t0 =
      amplitude.end_time() - tail_fraction * (amplitude.end_time() - amplitude.start_time());
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < amplitude.size(); ++i) {
    if (amplitude.time(i) >= t0) {
      acc += amplitude.value(i);
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

int EnvelopeRunResult::settling_tick(double lo, double hi) const {
  int candidate = -1;
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    const bool inside = ticks[i].amplitude >= lo && ticks[i].amplitude <= hi;
    if (inside && candidate < 0) candidate = static_cast<int>(i);
    if (!inside) candidate = -1;
  }
  return candidate;
}

double EnvelopeRunResult::steady_ripple(double tail_fraction) const {
  LCOSC_REQUIRE(!amplitude.empty(), "no amplitude trace");
  const double t0 =
      amplitude.end_time() - tail_fraction * (amplitude.end_time() - amplitude.start_time());
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t i = 0; i < amplitude.size(); ++i) {
    if (amplitude.time(i) >= t0) {
      lo = std::min(lo, amplitude.value(i));
      hi = std::max(hi, amplitude.value(i));
    }
  }
  return hi > lo ? hi - lo : 0.0;
}

namespace {

// Guarded explicit advance; the integrator body lives in
// envelope_kernel.h, shared verbatim with the batched lockstep engine.
double advance_envelope(driver::OscillatorDriver& driver, double rp, double ceff, double a,
                        double h, std::uint64_t& substeps) {
  auto lambda_of = [&](double amp) {
    const double n_eff = driver.fundamental_port_current(amp) / amp;
    return (n_eff - 1.0 / rp) / (2.0 * ceff);
  };
  return advance_envelope_guarded(lambda_of, a, h, substeps);
}

// Implicit (backward) log-Euler advance over h: solve
//   u' = u + h * lambda(exp(u')),   u = ln A,
// by Newton with the finite-difference slope d(lambda)/d(ln A).  Being
// L-stable it needs no stability substepping, so a macro step costs a
// handful of driver evaluations regardless of h -- the explicit guarded
// integrator above pays ~h / min(0.2/|lam|, 0.5/|slope|) substeps, which
// near the regulated balance point is one substep per microsecond no
// matter the step.  Accuracy is the caller's job (step-doubling LTE);
// this routine only promises stability.  Falls back to the explicit
// integrator if Newton stalls (e.g. right after a large code change).
double advance_envelope_implicit(driver::OscillatorDriver& driver, double rp, double ceff,
                                 double a, double h, std::uint64_t& substeps) {
  auto lambda_of = [&](double amp) {
    const double n_eff = driver.fundamental_port_current(amp) / amp;
    return (n_eff - 1.0 / rp) / (2.0 * ceff);
  };
  const double u0 = std::log(a);
  double u = u0;  // predictor: constant amplitude
  for (int iter = 0; iter < 25; ++iter) {
    ++substeps;
    const double ai = std::clamp(std::exp(u), 1e-9, 1e3);
    const double lam = lambda_of(ai);
    const double eps = 1e-3;
    const double slope = (lambda_of(ai * (1.0 + eps)) - lam) / eps;
    const double residual = u - u0 - h * lam;
    double jacobian = 1.0 - h * slope;
    // Keep Newton descending when the expanding region makes the
    // Jacobian tiny or negative.
    if (std::abs(jacobian) < 1e-3) jacobian = jacobian < 0.0 ? -1e-3 : 1e-3;
    // Trust region of half a decade in log amplitude per iteration.
    const double du = std::clamp(-residual / jacobian, -0.5, 0.5);
    u += du;
    if (std::abs(du) < 1e-12) {
      return std::clamp(std::exp(u), 1e-9, 1e3);
    }
  }
  return advance_envelope(driver, rp, ceff, a, h, substeps);
}

void flush_envelope_metrics(const EnvelopeRunResult& result) {
  if (!obs::metrics_enabled()) return;
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& runs = registry.counter("envelope.runs");
  static obs::Counter& step_count = registry.counter("envelope.steps");
  static obs::Counter& substep_count = registry.counter("envelope.substeps");
  static obs::Counter& tick_count = registry.counter("envelope.ticks");
  static obs::Counter& rejected = registry.counter("envelope.adaptive.rejected_steps");
  runs.add(1);
  step_count.add(result.macro_steps);
  substep_count.add(result.substeps);
  tick_count.add(result.ticks.size());
  rejected.add(result.rejected_steps);
}

}  // namespace

EnvelopeSimulator::EnvelopeSimulator(EnvelopeSimConfig config)
    : config_(config),
      tank_(config.tank),
      driver_(config.driver),
      fsm_(config.regulation) {
  LCOSC_REQUIRE(config_.dt > 0.0, "envelope step must be positive");
  LCOSC_REQUIRE(config_.initial_amplitude > 0.0, "initial amplitude must be positive");
  LCOSC_REQUIRE(config_.max_step_multiple >= 1, "envelope max_step_multiple must be >= 1");
}

EnvelopeRunResult EnvelopeSimulator::run(double duration) {
  LCOSC_SPAN("envelope.run");
  LCOSC_REQUIRE(duration > 0.0, "duration must be positive");
  return config_.adaptive ? run_adaptive(duration) : run_fixed(duration);
}

EnvelopeRunResult EnvelopeSimulator::run_fixed(double duration) {
  const double rp = tank_.parallel_resistance();
  const double ceff = tank_.effective_capacitance();

  fsm_.por_reset();
  driver_.set_code(fsm_.code());
  driver_.set_enabled(true);

  regulation::AmplitudeDetector detector(config_.detector);
  devices::LowPassFilter vdc1(config_.detector.filter_tau);

  EnvelopeRunResult result;
  result.amplitude.set_name("amplitude");

  double a = config_.initial_amplitude;
  bool nvm_applied = false;
  const double dt = config_.dt;
  // Index the loop by step count instead of accumulating t += dt: over a
  // 40 ms run at a 2 us step the accumulated sum drifts by ~1e4 ulp,
  // which can drop the final step (and with it the regulation tick that
  // lands exactly on `duration`).  Durations within one part in 1e12 of
  // an integer step count are treated as exact.
  const auto steps =
      static_cast<std::int64_t>(std::ceil(duration / dt * (1.0 - 1e-12)));
  // Tick times are likewise computed as tick_index * tick_period; the
  // same relative slack absorbs the ulp mismatch between the two grids.
  const double tick_period = fsm_.config().tick_period;
  std::int64_t tick_index = 1;
  result.amplitude.reserve(static_cast<std::size_t>(steps) + 2);

  // Engine counters accumulate locally and flush once per run, keeping
  // the per-step loop free of registry traffic.
  std::uint64_t substeps = 0;

  for (std::int64_t step = 0; step < steps; ++step) {
    const double t_step = static_cast<double>(step) * dt;
    if (!nvm_applied && t_step >= fsm_.config().nvm_delay) {
      fsm_.apply_nvm_preset();
      driver_.set_code(fsm_.code());
      nvm_applied = true;
    }

    a = advance_envelope(driver_, rp, ceff, a, dt, substeps);
    if (!std::isfinite(a)) {
      throw ConvergenceError("envelope diverged (non-finite amplitude) at t=" +
                             std::to_string(static_cast<double>(step + 1) * dt));
    }
    const double t = static_cast<double>(step + 1) * dt;

    // Detector: rectified mean of the pin swing is A/pi.
    vdc1.step(dt, a / kPi);
    result.amplitude.append(t, a);

    if (t >= static_cast<double>(tick_index) * tick_period * (1.0 - 1e-12)) {
      // Window verdict directly on the filtered VDC1.
      devices::WindowState window = devices::WindowState::Inside;
      if (vdc1.output() < detector.vr3()) window = devices::WindowState::Below;
      else if (vdc1.output() > detector.vr4()) window = devices::WindowState::Above;
      fsm_.tick(window);
      driver_.set_code(fsm_.code());

      EnvelopeTick tick;
      tick.time = t;
      tick.code = fsm_.code();
      tick.amplitude = a;
      tick.vdc1 = vdc1.output();
      tick.supply_current = driver_.supply_current(a);
      result.ticks.push_back(tick);
      ++tick_index;
    }
  }
  result.final_code = fsm_.code();
  result.macro_steps = static_cast<std::size_t>(steps);
  result.substeps = static_cast<std::size_t>(substeps);
  flush_envelope_metrics(result);
  return result;
}

EnvelopeRunResult EnvelopeSimulator::run_adaptive(double duration) {
  const double rp = tank_.parallel_resistance();
  const double ceff = tank_.effective_capacitance();

  fsm_.por_reset();
  driver_.set_code(fsm_.code());
  driver_.set_enabled(true);

  regulation::AmplitudeDetector detector(config_.detector);
  devices::LowPassFilter vdc1(config_.detector.filter_tau);

  EnvelopeRunResult result;
  result.amplitude.set_name("amplitude");

  double a = config_.initial_amplitude;
  const double dt = config_.dt;
  const auto steps =
      static_cast<std::int64_t>(std::ceil(duration / dt * (1.0 - 1e-12)));
  const double tick_period = fsm_.config().tick_period;
  std::int64_t tick_index = 1;

  // Macro steps are integer multiples n * dt with n a power of two, so
  // every accepted step lands exactly on the fixed grid: tick decisions
  // and the NVM preset read the state at the same times as the fixed
  // loop, and the trace resampling below hits accepted samples exactly.
  int n_max = 1;
  while (n_max * 2 <= config_.max_step_multiple) n_max *= 2;

  // Smallest step index s with s * dt at-or-after the target time,
  // matching the fixed loop's comparison (`cmp` reproduces its slack).
  auto first_index = [&](auto cmp) {
    std::int64_t s = 0;
    while (s < steps && !cmp(static_cast<double>(s) * dt)) ++s;
    return s;
  };
  const double nvm_delay = fsm_.config().nvm_delay;
  std::int64_t s_nvm = first_index([&](double t) { return t >= nvm_delay; });
  auto tick_target = [&] {
    const double threshold = static_cast<double>(tick_index) * tick_period * (1.0 - 1e-12);
    std::int64_t s = std::max<std::int64_t>(
        static_cast<std::int64_t>(std::floor(threshold / dt)) - 1, 1);
    while (s < steps && static_cast<double>(s) * dt < threshold) ++s;
    return s;
  };
  std::int64_t s_tick = tick_target();

  // The log-Euler advance is 1st order in the macro step; step doubling
  // gives LTE = a_half - a_full.
  StepControlOptions sc;
  sc.order = 1;
  PiStepController controller(sc);

  // Internal accepted samples; resampled onto the fixed grid afterwards
  // so the result trace has the fixed path's shape.
  SampledCurve curve;
  curve.reserve(static_cast<std::size_t>(std::min<std::int64_t>(steps, 4096)) + 2);
  curve.append(0.0, a);

  std::uint64_t substeps = 0;
  bool nvm_applied = false;
  std::int64_t s = 0;
  int n = 1;
  while (s < steps) {
    if (!nvm_applied && s >= s_nvm) {
      fsm_.apply_nvm_preset();
      driver_.set_code(fsm_.code());
      nvm_applied = true;
    }
    // Cap the step at the run end and at the next exact-time boundary.
    std::int64_t limit = steps - s;
    if (!nvm_applied) limit = std::min(limit, s_nvm - s);
    limit = std::min(limit, std::max<std::int64_t>(s_tick - s, 1));
    const int n_try = static_cast<int>(std::min<std::int64_t>(n, limit));
    const double h = static_cast<double>(n_try) * dt;

    // Step doubling: one macro step against two halves from the same state.
    const double a_full = advance_envelope_implicit(driver_, rp, ceff, a, h, substeps);
    const double a_mid = advance_envelope_implicit(driver_, rp, ceff, a, 0.5 * h, substeps);
    const double a_half = advance_envelope_implicit(driver_, rp, ceff, a_mid, 0.5 * h, substeps);
    if (!std::isfinite(a_full) || !std::isfinite(a_half)) {
      throw ConvergenceError("envelope diverged (non-finite amplitude) at t=" +
                             std::to_string(static_cast<double>(s) * dt + h));
    }
    // Two error sources bound the accepted step.  The Richardson term
    // |a_half - a_full| is the integrator LTE -- it goes quiet when the
    // advance is internally substep-limited (both trials resolve the
    // dynamics), which is exactly when the second term matters: the
    // midpoint-versus-chord deviation bounds what the piecewise-linear
    // dense output loses across the macro step (post-tick exponential
    // relaxations have strong curvature and must stay resolved).
    const double richardson = std::abs(a_half - a_full);
    const double curvature = std::abs(a_mid - 0.5 * (a + a_half));
    const double err = std::max(richardson, curvature) /
                       (config_.lte_abstol +
                        config_.lte_reltol * std::max(std::abs(a), std::abs(a_half)));

    if (err > 1.0 && n_try > 1) {
      ++result.rejected_steps;
      const double factor = controller.propose_factor(err, false);
      int shrunk = n_try;
      while (shrunk > 1 && static_cast<double>(shrunk) > static_cast<double>(n_try) * factor) {
        shrunk /= 2;
      }
      n = std::max(shrunk, 1);
      continue;
    }

    const double t_mid = static_cast<double>(s) * dt + 0.5 * h;
    if (err > 1.0) {
      // At the floor (n_try == 1) with the tolerance still violated the
      // dynamics outrun a dt-sized implicit step -- the startup growth
      // phase.  Advance exactly like the fixed path does, with the
      // guarded explicit integrator over one dt; the controller's
      // post-rejection cap keeps n at 1 until the error settles.
      a = advance_envelope(driver_, rp, ceff, a, h, substeps);
      if (!std::isfinite(a)) {
        throw ConvergenceError("envelope diverged (non-finite amplitude) at t=" +
                               std::to_string(static_cast<double>(s) * dt + h));
      }
    } else {
      // Accept the implicit half-step solution; keep the midpoint sample
      // (already paid for), halving the dense-output segment length.
      a = a_half;
      curve.append(t_mid, a_mid);
    }
    s += n_try;
    const double t = static_cast<double>(s) * dt;
    // One ZOH filter update over the whole macro step: exact for the
    // first-order filter under piecewise-constant input, and the input
    // a / pi moves by less than the LTE tolerance per accepted step.
    vdc1.step(h, a / kPi);
    curve.append(t, a);
    ++result.macro_steps;

    if (s >= s_tick && static_cast<double>(s) * dt >=
                           static_cast<double>(tick_index) * tick_period * (1.0 - 1e-12)) {
      devices::WindowState window = devices::WindowState::Inside;
      if (vdc1.output() < detector.vr3()) window = devices::WindowState::Below;
      else if (vdc1.output() > detector.vr4()) window = devices::WindowState::Above;
      fsm_.tick(window);
      driver_.set_code(fsm_.code());

      EnvelopeTick tick;
      tick.time = t;
      tick.code = fsm_.code();
      tick.amplitude = a;
      tick.vdc1 = vdc1.output();
      tick.supply_current = driver_.supply_current(a);
      result.ticks.push_back(tick);
      ++tick_index;
      s_tick = tick_target();
    }

    const double factor = controller.propose_factor(err, true);
    int grown = n_try;
    while (grown * 2 <= n_max &&
           static_cast<double>(grown * 2) <= static_cast<double>(n_try) * factor) {
      grown *= 2;
    }
    n = grown;
  }

  result.final_code = fsm_.code();
  result.substeps = static_cast<std::size_t>(substeps);

  // Resample onto the fixed output grid: one sample per dt at
  // (step + 1) * dt, exactly the fixed loop's sample times.
  result.amplitude.reserve(static_cast<std::size_t>(steps) + 2);
  for (std::int64_t step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step + 1) * dt;
    result.amplitude.append(t, curve(t));
  }
  flush_envelope_metrics(result);
  return result;
}

}  // namespace lcosc::system
