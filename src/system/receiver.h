// Receiving-coil subsystem with system-level supervision (paper Sections
// 1 and 7).
//
// Beyond demodulating the position channels, the complete system also
// checks for a short between the oscillator (excitation) coil and a
// receiving coil: "monitoring if dc level on receiving coils can be easy
// changed".  The receiving coil's sense node is biased through a known
// impedance; the supervision periodically injects a small test current
// and checks that the DC level moves by the expected amount.  A short to
// the (low-impedance) oscillator coil clamps the node, the level no
// longer moves, and the fault latches.
#pragma once

#include <string>

#include "devices/lowpass.h"
#include "system/position_sensor.h"

namespace lcosc::system {

struct ReceiverConfig {
  PositionSensorConfig position{};
  // DC bias network of the receiving-coil sense node.
  double bias_level = 2.5;          // [V]
  double bias_resistance = 100e3;   // [ohm]
  // Supervision: injected test current and acceptance.
  double test_current = 10e-6;      // [A] -> expected shift = I * Rbias = 1 V
  // Measured shift below this fraction of the expected one flags a short.
  double min_shift_fraction = 0.5;
  // Supervision cadence: idle, inject, evaluate.
  double supervision_period = 10e-3;
  double injection_time = 1e-3;
  // DC level settling model (bias node RC).
  double settle_tau = 50e-6;
};

enum class SupervisionPhase { Idle, Injecting };

class Receiver {
 public:
  explicit Receiver(ReceiverConfig config = {});

  // Advance one step.
  //   v_excitation      instantaneous differential excitation voltage
  //   theta             true rotor angle
  //   short_conductance conductance of a (faulty) short from the sense
  //                     node to the oscillator coil pin [S]; 0 = healthy
  //   v_osc_pin         absolute voltage of that oscillator pin
  void step(double dt, double v_excitation, double theta, double short_conductance = 0.0,
            double v_osc_pin = 2.5);

  // Position channels (delegated).
  [[nodiscard]] double estimated_angle() const { return position_.estimated_angle(); }
  [[nodiscard]] double sin_channel() const { return position_.sin_channel(); }
  [[nodiscard]] double cos_channel() const { return position_.cos_channel(); }

  // DC supervision state.
  [[nodiscard]] double dc_level() const { return dc_level_.output(); }
  [[nodiscard]] bool coil_short_fault() const { return fault_; }
  [[nodiscard]] SupervisionPhase supervision_phase() const { return phase_; }
  [[nodiscard]] long supervision_cycles() const { return cycles_; }

  void reset();

  [[nodiscard]] const ReceiverConfig& config() const { return config_; }

 private:
  // Steady-state DC level of the sense node for the present test current
  // and short conductance.
  [[nodiscard]] double dc_target(bool injecting, double short_conductance,
                                 double v_osc_pin) const;

  ReceiverConfig config_;
  PositionSensor position_;
  devices::LowPassFilter dc_level_;
  SupervisionPhase phase_ = SupervisionPhase::Idle;
  double phase_time_ = 0.0;
  double baseline_level_ = 0.0;
  bool fault_ = false;
  long cycles_ = 0;
};

}  // namespace lcosc::system
