// The application the driver exists for (paper Section 1): the excitation
// coil's harmonic field couples into receiving coils; the coupling varies
// with the rotor angle, and comparing the received amplitudes yields the
// position.
//
// This model is deliberately at the signal-processing level: given the
// regulated excitation amplitude, the two receiving coils see
//   A_sin = k * A * sin(theta),   A_cos = k * A * cos(theta)
// each demodulated by rectify-and-filter channels; the angle estimate is
// atan2 of the two demodulated values (quadrant-correct because the
// synchronous demodulation preserves sign).
#pragma once

#include "devices/rectifier.h"

namespace lcosc::system {

struct PositionSensorConfig {
  // Peak coupling from the excitation coil into each receiving coil.
  double coupling_gain = 0.3;
  // Demodulation filter time constant.
  double filter_tau = 100e-6;
  // Additive measurement noise RMS on each receiving channel [V] (set by
  // the caller per scenario; 0 = ideal).
  double noise_rms = 0.0;
};

class PositionSensor {
 public:
  explicit PositionSensor(PositionSensorConfig config = {});

  // Advance one simulation step: `v_excitation` is the instantaneous
  // differential excitation voltage, `theta` the true rotor angle [rad],
  // `noise1/noise2` optional pre-drawn noise samples.
  void step(double dt, double v_excitation, double theta, double noise1 = 0.0,
            double noise2 = 0.0);

  // Demodulated channel amplitudes.
  [[nodiscard]] double sin_channel() const { return demod_sin_.output(); }
  [[nodiscard]] double cos_channel() const { return demod_cos_.output(); }

  // Angle estimate from the demodulated channels [rad].
  [[nodiscard]] double estimated_angle() const;

  void reset();

  [[nodiscard]] const PositionSensorConfig& config() const { return config_; }

 private:
  PositionSensorConfig config_;
  devices::SynchronousRectifierFilter demod_sin_;
  devices::SynchronousRectifierFilter demod_cos_;
};

}  // namespace lcosc::system
