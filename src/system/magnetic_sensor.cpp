#include "system/magnetic_sensor.h"

#include <array>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "devices/lowpass.h"

namespace lcosc::system {

tank::InductanceMatrix MagneticSensorSystem::build_magnetics(
    const MagneticSensorConfig& config) {
  Matrix k(3, 3);
  const double k1 = config.peak_coupling * std::sin(config.rotor_angle);
  const double k2 = config.peak_coupling * std::cos(config.rotor_angle);
  k(0, 1) = k(1, 0) = k1;
  k(0, 2) = k(2, 0) = k2;
  k(1, 2) = k(2, 1) = config.receive_cross_coupling;
  return tank::InductanceMatrix(
      {config.tank.inductance, config.receive_inductance, config.receive_inductance}, k);
}

MagneticSensorSystem::MagneticSensorSystem(MagneticSensorConfig config)
    : config_(config),
      magnetics_(build_magnetics(config)),
      driver_(config.driver),
      detector_(config.detector),
      fsm_(config.regulation) {
  LCOSC_REQUIRE(config_.load_resistance > 0.0 && config_.receive_resistance > 0.0,
                "receiving coil resistances must be positive");
  LCOSC_REQUIRE(config_.steps_per_period >= 16, "need at least 16 steps per period");
  // Guard against a stiff receiving-coil pole relative to the RF step:
  // tau_rx = L/(Rcoil+Rload) must stay above ~2 integration steps.
  const double dt = 1.0 / (tank::RlcTank(config_.tank).resonance_frequency() *
                           config_.steps_per_period);
  const double tau_rx = config_.receive_inductance /
                        (config_.receive_resistance + config_.load_resistance);
  LCOSC_REQUIRE(tau_rx > 2.0 * dt,
                "receiving-coil pole too fast for the integration step; lower the load "
                "resistance or raise steps_per_period");
}

MagneticSensorResult MagneticSensorSystem::run(double duration) {
  LCOSC_REQUIRE(duration > 0.0, "duration must be positive");
  const tank::RlcTank tk(config_.tank);
  const double dt = 1.0 / (tk.resonance_frequency() * config_.steps_per_period);

  fsm_.por_reset();
  driver_.set_code(fsm_.code());
  driver_.set_enabled(true);
  detector_.reset();

  // States: v1, v2 (excitation pins), i_exc, i_rx1, i_rx2.
  std::array<double, 5> s{0.5 * config_.startup_kick, -0.5 * config_.startup_kick, 0.0, 0.0,
                          0.0};

  // Synchronous demodulation of the receiving-coil load voltages against
  // the excitation differential.
  devices::SynchronousRectifierFilter demod_sin(config_.demod_filter_tau);
  devices::SynchronousRectifierFilter demod_cos(config_.demod_filter_tau);

  auto derivatives = [&](const std::array<double, 5>& x) {
    std::array<double, 5> d{};
    const driver::NodeCurrents drv = driver_.output(x[0], x[1]);
    // Coil terminal voltages.
    const Vector v_coils = {
        (x[0] - x[1]) - config_.tank.series_resistance * x[2],
        -(config_.receive_resistance + config_.load_resistance) * x[3],
        -(config_.receive_resistance + config_.load_resistance) * x[4],
    };
    const Vector di = magnetics_.current_derivatives(v_coils);
    d[0] = (drv.into_lc1 - x[2]) / config_.tank.capacitance1;
    d[1] = (drv.into_lc2 + x[2]) / config_.tank.capacitance2;
    d[2] = di[0];
    d[3] = di[1];
    d[4] = di[2];
    return d;
  };

  MagneticSensorResult result;
  result.envelope.set_name("envelope");

  double env_peak = 0.0;
  double env_peak_time = 0.0;
  bool env_have = false;
  bool env_last_positive = true;

  bool nvm = false;
  double next_tick = fsm_.config().tick_period;
  const std::size_t total_steps = static_cast<std::size_t>(std::ceil(duration / dt));

  double t = 0.0;
  for (std::size_t step = 0; step < total_steps; ++step) {
    if (!nvm && t >= fsm_.config().nvm_delay) {
      fsm_.apply_nvm_preset();
      driver_.set_code(fsm_.code());
      nvm = true;
    }

    // RK4.
    const auto k1 = derivatives(s);
    std::array<double, 5> mid{};
    for (std::size_t i = 0; i < 5; ++i) mid[i] = s[i] + 0.5 * dt * k1[i];
    const auto k2 = derivatives(mid);
    for (std::size_t i = 0; i < 5; ++i) mid[i] = s[i] + 0.5 * dt * k2[i];
    const auto k3 = derivatives(mid);
    std::array<double, 5> end{};
    for (std::size_t i = 0; i < 5; ++i) end[i] = s[i] + dt * k3[i];
    const auto k4 = derivatives(end);
    for (std::size_t i = 0; i < 5; ++i) {
      s[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    t += dt;

    const double vd = s[0] - s[1];
    detector_.step(dt, s[0], s[1]);

    // Receiving-coil sense voltages (across the loads) demodulated by the
    // excitation phase.  The sign convention picks the sense-winding
    // polarity that makes a positive coupling read positive (the induced
    // current opposes the flux -- Lenz -- so the load is wired inverted).
    demod_sin.step(dt, -s[3] * config_.load_resistance, vd);
    demod_cos.step(dt, -s[4] * config_.load_resistance, vd);

    // Envelope tracking.
    const bool positive = vd >= 0.0;
    if (positive != env_last_positive) {
      if (env_have &&
          (result.envelope.empty() || env_peak_time > result.envelope.end_time())) {
        result.envelope.append(env_peak_time, env_peak);
      }
      env_peak = 0.0;
      env_have = false;
      env_last_positive = positive;
    }
    if (std::abs(vd) >= env_peak) {
      env_peak = std::abs(vd);
      env_peak_time = t;
      env_have = true;
    }

    if (t >= next_tick) {
      fsm_.tick(detector_.window_state());
      driver_.set_code(fsm_.code());
      next_tick += fsm_.config().tick_period;
    }
  }

  // Summary.
  double acc = 0.0;
  std::size_t n = 0;
  const double t0 = result.envelope.end_time() - 0.2 * result.envelope.duration();
  for (std::size_t i = 0; i < result.envelope.size(); ++i) {
    if (result.envelope.time(i) >= t0) {
      acc += result.envelope.value(i);
      ++n;
    }
  }
  result.settled_amplitude = n ? acc / static_cast<double>(n) : 0.0;
  result.final_code = fsm_.code();
  result.sin_channel = demod_sin.output();
  result.cos_channel = demod_cos.output();
  result.estimated_angle = std::atan2(result.sin_channel, result.cos_channel);
  double err = result.estimated_angle - config_.rotor_angle;
  while (err > kPi) err -= kTwoPi;
  while (err < -kPi) err += kTwoPi;
  result.angle_error = err;
  return result;
}

}  // namespace lcosc::system
