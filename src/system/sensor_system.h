// The complete position sensor of paper Fig. 9 (one channel): regulated
// LC oscillator excitation + receiving-coil chain with demodulation and
// the system-level DC supervision, co-simulated cycle-accurately.
//
// This is the composition the paper's introduction motivates: the driver
// regulates the excitation amplitude so the receiver's ratiometric angle
// estimate stays valid across tank quality, component spread and faults.
#pragma once

#include "system/oscillator_system.h"
#include "system/receiver.h"

namespace lcosc::system {

struct SensorSystemConfig {
  OscillatorSystemConfig oscillator{};
  ReceiverConfig receiver{};
  // True rotor angle [rad] (constant during a run; sweep across runs).
  double rotor_angle = 0.0;
  // Optional receiving-coil-to-oscillator short (Section 7 supervision):
  // conductance [S] and activation time.
  double coil_short_conductance = 0.0;
  double coil_short_time = 0.0;
};

struct SensorRunResult {
  SimulationResult oscillator;
  double estimated_angle = 0.0;
  double angle_error = 0.0;      // wrapped to [-pi, pi]
  bool coil_short_fault = false;
  long supervision_cycles = 0;
};

class SensorSystem {
 public:
  explicit SensorSystem(SensorSystemConfig config);

  [[nodiscard]] SensorRunResult run(double duration);

  [[nodiscard]] OscillatorSystem& oscillator() { return oscillator_; }
  [[nodiscard]] Receiver& receiver() { return receiver_; }

 private:
  SensorSystemConfig config_;
  OscillatorSystem oscillator_;
  Receiver receiver_;
};

}  // namespace lcosc::system
