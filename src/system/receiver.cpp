#include "system/receiver.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::system {

Receiver::Receiver(ReceiverConfig config)
    : config_(config),
      position_(config.position),
      dc_level_(config.settle_tau, config.bias_level) {
  LCOSC_REQUIRE(config_.bias_resistance > 0.0, "bias resistance must be positive");
  LCOSC_REQUIRE(config_.test_current > 0.0, "test current must be positive");
  LCOSC_REQUIRE(config_.min_shift_fraction > 0.0 && config_.min_shift_fraction < 1.0,
                "shift fraction must be in (0,1)");
  LCOSC_REQUIRE(config_.injection_time > 0.0 &&
                    config_.injection_time < config_.supervision_period,
                "injection time must fit inside the supervision period");
  baseline_level_ = config_.bias_level;
}

double Receiver::dc_target(bool injecting, double short_conductance,
                           double v_osc_pin) const {
  // Thevenin of the bias network (bias_level via Rbias) in parallel with
  // the short path (v_osc_pin via 1/g), plus the optional test current.
  const double g_bias = 1.0 / config_.bias_resistance;
  const double g_total = g_bias + short_conductance;
  const double i_inject = injecting ? config_.test_current : 0.0;
  return (config_.bias_level * g_bias + v_osc_pin * short_conductance + i_inject) / g_total;
}

void Receiver::step(double dt, double v_excitation, double theta, double short_conductance,
                    double v_osc_pin) {
  LCOSC_REQUIRE(short_conductance >= 0.0, "short conductance must be non-negative");
  position_.step(dt, v_excitation, theta);

  phase_time_ += dt;
  const bool injecting = phase_ == SupervisionPhase::Injecting;
  dc_level_.step(dt, dc_target(injecting, short_conductance, v_osc_pin));

  switch (phase_) {
    case SupervisionPhase::Idle:
      if (phase_time_ >= config_.supervision_period - config_.injection_time) {
        baseline_level_ = dc_level_.output();
        phase_ = SupervisionPhase::Injecting;
        phase_time_ = 0.0;
      }
      break;
    case SupervisionPhase::Injecting:
      if (phase_time_ >= config_.injection_time) {
        // Evaluate: did the level move as a healthy high-impedance node?
        const double expected = config_.test_current * config_.bias_resistance;
        const double measured = dc_level_.output() - baseline_level_;
        if (measured < config_.min_shift_fraction * expected) fault_ = true;
        ++cycles_;
        phase_ = SupervisionPhase::Idle;
        phase_time_ = 0.0;
      }
      break;
  }
}

void Receiver::reset() {
  position_.reset();
  dc_level_.reset(config_.bias_level);
  phase_ = SupervisionPhase::Idle;
  phase_time_ = 0.0;
  baseline_level_ = config_.bias_level;
  fault_ = false;
  cycles_ = 0;
}

}  // namespace lcosc::system
