// Physical model of the current limitation DAC (paper Figs. 5-6):
// prescaler -> complementary top/bottom current mirrors, each with four
// fixed taps (16, 16, 32, 64 units) and a 7-bit binary-weighted section.
//
// Every mirror branch carries a Gaussian relative mismatch whose sigma
// scales as sigma_unit / sqrt(weight) (a weight-w branch is w matched unit
// devices in parallel).  Major-carry code transitions (15->16, 47->48,
// 79->80, 95->96, 111->112) hand the output from one set of branches to a
// nearly disjoint one, so their step error is the largest -- which is how
// the silicon of the paper came to be non-monotonic at code 96 (Fig. 14).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/constants.h"
#include "common/random.h"
#include "dac/control_code.h"

namespace lcosc::dac {

struct MismatchConfig {
  // Relative 1-sigma mismatch of one unit current device.
  double unit_sigma = 0.02;
  // Relative 1-sigma error of each prescaler ratio setting.
  double prescaler_sigma = 0.01;
  // Relative 1-sigma error of the reference current itself (gain error,
  // common to all codes; does not affect monotonicity).
  double reference_sigma = 0.01;
};

// One mirror (top or bottom) with its drawn branch errors.
class MirrorBank {
 public:
  // Ideal bank: every branch factor is exactly 1.
  MirrorBank();
  // Bank with Gaussian branch errors drawn from `rng`.
  MirrorBank(const MismatchConfig& config, Rng& rng);

  // Output units contributed for the given control word, including errors.
  [[nodiscard]] double output_units(const ControlSignals& signals) const;

  // Error-free value for reference.
  [[nodiscard]] static double ideal_units(const ControlSignals& signals);

  // Branch error factors (1 + eps); exposed for tests.
  [[nodiscard]] const std::array<double, 4>& fixed_factors() const { return fixed_factors_; }
  [[nodiscard]] const std::array<double, 7>& binary_factors() const { return binary_factors_; }

 private:
  // Fixed taps in OscE bit order: 16 (I16a), 16 (I16b), 32, 64.
  static constexpr std::array<int, 4> kFixedWeights = {16, 16, 32, 64};
  // Binary section weights for OscF bits 0..6.
  static constexpr std::array<int, 7> kBinaryWeights = {1, 2, 4, 8, 16, 32, 64};

  std::array<double, 4> fixed_factors_{};
  std::array<double, 7> binary_factors_{};
};

// The complete current limitation DAC with mismatch.
class CurrentLimitationDac {
 public:
  CurrentLimitationDac(double unit_current, const MismatchConfig& config, std::uint64_t seed);

  // Ideal (mismatch-free) current for a code.
  [[nodiscard]] double ideal_current(int code) const;

  // Mismatched output current: average of the top and bottom mirror
  // limits, which is what the amplitude loop effectively regulates on.
  [[nodiscard]] double output_current(int code) const;

  [[nodiscard]] double top_current(int code) const;
  [[nodiscard]] double bottom_current(int code) const;

  // Relative step (I(code+1) - I(code)) / I(code) of the mismatched
  // transfer; code in 1..126.
  [[nodiscard]] double relative_step(int code) const;

  // Codes (n) where I(n+1) <= I(n): the non-monotonic transitions.
  [[nodiscard]] std::vector<int> non_monotonic_codes() const;

  [[nodiscard]] double unit_current() const { return unit_current_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  double unit_current_;
  std::uint64_t seed_;
  double reference_factor_;
  std::array<double, 4> prescale_factors_{};  // ratios x1, x2, x4, x8
  MirrorBank top_;
  MirrorBank bottom_;
};

// Search (deterministically from `start_seed`) for a seed whose DAC is
// non-monotonic exactly at `code` and nowhere else -- used by the Fig. 13/14
// benches to reproduce the silicon sample the paper measured.
[[nodiscard]] std::uint64_t find_seed_with_single_negative_step(
    int code, double unit_current = kDacUnitCurrent, const MismatchConfig& config = {},
    std::uint64_t start_seed = 1, int max_attempts = 200000);

// Monte-Carlo probability that the transfer is non-monotonic at each major
// carry transition; returns pairs (code, probability).
[[nodiscard]] std::vector<std::pair<int, double>> monte_carlo_non_monotonicity(
    int trials, const MismatchConfig& config = {}, std::uint64_t seed = 12345);

}  // namespace lcosc::dac
