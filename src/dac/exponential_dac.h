// Ideal PWL-approximated exponential DAC transfer and its analysis
// (paper Figs. 3 and 4, Eqs. 5-6).
#pragma once

#include <vector>

#include "common/constants.h"
#include "dac/control_code.h"
#include "faults/fault_bus.h"

namespace lcosc::dac {

// Analysis record for one code.
struct CodePoint {
  int code = 0;
  int multiplication = 0;       // M(code), units of Iref2
  double current = 0.0;         // M(code) * unit current [A]
  double relative_step = 0.0;   // (M(code+1) - M(code)) / M(code); 0 at 127
};

// The ideal 7-bit PWL exponential DAC of the paper.
class PwlExponentialDac {
 public:
  explicit PwlExponentialDac(double unit_current = kDacUnitCurrent);

  [[nodiscard]] int code_count() const { return kDacCodeCount; }
  [[nodiscard]] double unit_current() const { return unit_current_; }

  // Observe an internal-fault bus (nullptr detaches).  While a DAC fault
  // is active the transfer reflects the stuck control lines / dead
  // segment; the healthy path is a single pointer check.
  void attach_fault_bus(const faults::FaultBus* bus) { fault_bus_ = bus; }

  // Multiplication factor M(code), including any active bus fault.
  [[nodiscard]] int multiplication(int code) const;

  // Output (current limitation) for a code [A].
  [[nodiscard]] double current(int code) const;

  // Relative step (M(code+1)-M(code))/M(code); code must be < 127 and
  // M(code) > 0 (i.e. code >= 1).
  [[nodiscard]] double relative_step(int code) const;

  // Full transfer table for figure generation.
  [[nodiscard]] std::vector<CodePoint> transfer_table() const;

  // Extremes of the relative step over codes in [first, 126].
  [[nodiscard]] double max_relative_step(int first_code) const;
  [[nodiscard]] double min_relative_step(int first_code) const;

  // The ideal transfer is monotone by construction; exposed so tests can
  // contrast it with the mismatched mirror model.
  [[nodiscard]] bool is_monotonic() const;

  // Best-fit per-code growth ratio of an exact exponential through
  // M(16)..M(127) (least squares in log domain) -- how closely the PWL
  // approximation tracks I_n = I_0 (1+delta)^n of Eq. 6.
  [[nodiscard]] double fitted_growth_ratio() const;

  // Worst-case relative deviation of M(code) from that fitted exponential
  // over codes >= 16.
  [[nodiscard]] double max_exponential_deviation() const;

 private:
  double unit_current_;
  const faults::FaultBus* fault_bus_ = nullptr;
};

}  // namespace lcosc::dac
