#include "dac/dac_variants.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lcosc::dac {

double AmplitudeControlLaw::max_relative_step(int first_code) const {
  double worst = 0.0;
  for (int code = std::max(first_code, 1); code < code_count() - 1; ++code) {
    const double i0 = current(code);
    if (i0 <= 0.0) continue;
    worst = std::max(worst, (current(code + 1) - i0) / i0);
  }
  return worst;
}

double LinearLaw::current(int code) const {
  LCOSC_REQUIRE(code >= 0 && code <= kDacCodeMax, "code out of range");
  return full_scale_ * static_cast<double>(code) / static_cast<double>(kDacCodeMax);
}

IdealExponentialLaw::IdealExponentialLaw(double unit_current) : unit_current_(unit_current) {
  LCOSC_REQUIRE(unit_current > 0.0, "unit current must be positive");
  // Match the PWL anchors M(16) = 16 and M(127) = 1984.
  ratio_ = std::pow(1984.0 / 16.0, 1.0 / (127.0 - 16.0));
}

double IdealExponentialLaw::current(int code) const {
  LCOSC_REQUIRE(code >= 0 && code <= kDacCodeMax, "code out of range");
  if (code == 0) return 0.0;
  // Below the exponential anchor behave like the PWL's unit-step segment.
  if (code < 16) return unit_current_ * code;
  return unit_current_ * 16.0 * std::pow(ratio_, code - 16);
}

std::unique_ptr<AmplitudeControlLaw> make_control_law(ControlLawKind kind, double unit_current) {
  switch (kind) {
    case ControlLawKind::PwlExponential:
      return std::make_unique<PwlExponentialLaw>(unit_current);
    case ControlLawKind::Linear:
      return std::make_unique<LinearLaw>(unit_current * kDacFullScaleUnits);
    case ControlLawKind::IdealExponential:
      return std::make_unique<IdealExponentialLaw>(unit_current);
  }
  throw ConfigError("unknown control law kind");
}

}  // namespace lcosc::dac
