// Table 1 of the paper: mapping from the 7-bit amplitude code to the three
// hardware control buses of the current limitation DAC.
//
//   - OscD<2:0>  prescaler bus (thermometer 000/001/011/111 -> x1/2/4/8)
//   - OscE<3:0>  Gm-switching bus (enables fixed mirror taps 16/16/32/64
//                and extra output stages Gm/Gm/2Gm/4Gm)
//   - OscF<6:0>  binary-weighted current mirror bus (the 4 LSBs B3..B0 of
//                the code, left-shifted per segment)
//
// The resulting multiplication factor
//   M(code) = prescale * (fixed_units + OscF)
// is the piece-wise-linear approximation of an exponential: within each of
// the 8 segments the step is constant (1,1,2,4,8,16,32,64 units), and the
// relative step stays within [3.23%, 6.25%] for codes >= 16 (Figs. 3-4).
#pragma once

#include <array>
#include <cstdint>

namespace lcosc::dac {

struct ControlSignals {
  std::uint8_t osc_d = 0;  // 3-bit prescaler bus
  std::uint8_t osc_e = 0;  // 4-bit Gm-switching bus
  std::uint8_t osc_f = 0;  // 7-bit mirror bus

  friend bool operator==(const ControlSignals&, const ControlSignals&) = default;
};

// Segment (0..7) of a code: the 3 MSBs.
[[nodiscard]] int segment_of(int code);

// Per-segment left shift applied to the 4 LSBs to form OscF.
[[nodiscard]] int mirror_shift(int segment);

// Per-segment unit step of the multiplication factor (Fig. 3 annotations).
[[nodiscard]] int segment_step(int segment);

// First / last multiplication factor of a segment ("Range min/max").
[[nodiscard]] int segment_range_min(int segment);
[[nodiscard]] int segment_range_max(int segment);

// Encode a code (0..127) into the three control buses (throws ConfigError
// for out-of-range codes).
[[nodiscard]] ControlSignals encode_control(int code);

// Prescaler ratio selected by OscD (1, 2, 4 or 8).  Equals OscD value + 1
// for the thermometer codes used by encode_control.
[[nodiscard]] int prescale_factor(std::uint8_t osc_d);

// Prescaler ratio for an arbitrary (possibly faulted) OscD pattern: each
// enabled line adds its mirror ratio (bit0 +1, bit1 +2, bit2 +4), which
// reproduces 1/2/4/8 on the healthy thermometer codes and defines the
// hardware behaviour when a stuck line breaks the thermometer coding.
[[nodiscard]] int prescale_factor_raw(std::uint8_t osc_d);

// Sum of the fixed mirror taps (units of Iref2) enabled by OscE:
// bit0 -> 16 (I16a), bit1 -> 16 (I16b), bit2 -> 32, bit3 -> 64.
[[nodiscard]] int fixed_mirror_units(std::uint8_t osc_e);

// Number of active parallel Gm output stages selected by OscE: one stage
// is always on, bits 0/1/2/3 add 1/1/2/4 more (Fig. 7 / Table 1).
[[nodiscard]] int active_gm_stages(std::uint8_t osc_e);

// Multiplication factor reconstructed from control signals.
[[nodiscard]] int multiplication_factor(const ControlSignals& signals);

// Direct ideal multiplication factor of a code (0..1984).
[[nodiscard]] int multiplication_factor(int code);

// Render a bus as a binary string ("011") for table output.
[[nodiscard]] std::array<char, 8> format_bus(std::uint8_t value, int bits);

}  // namespace lcosc::dac
