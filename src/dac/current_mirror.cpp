#include "dac/current_mirror.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::dac {

MirrorBank::MirrorBank() {
  fixed_factors_.fill(1.0);
  binary_factors_.fill(1.0);
}

MirrorBank::MirrorBank(const MismatchConfig& config, Rng& rng) {
  for (std::size_t i = 0; i < kFixedWeights.size(); ++i) {
    const double sigma = config.unit_sigma / std::sqrt(static_cast<double>(kFixedWeights[i]));
    fixed_factors_[i] = 1.0 + rng.normal(0.0, sigma);
  }
  for (std::size_t i = 0; i < kBinaryWeights.size(); ++i) {
    const double sigma = config.unit_sigma / std::sqrt(static_cast<double>(kBinaryWeights[i]));
    binary_factors_[i] = 1.0 + rng.normal(0.0, sigma);
  }
}

double MirrorBank::ideal_units(const ControlSignals& signals) {
  return static_cast<double>(fixed_mirror_units(signals.osc_e) +
                             static_cast<int>(signals.osc_f));
}

double MirrorBank::output_units(const ControlSignals& signals) const {
  double units = 0.0;
  for (std::size_t i = 0; i < kFixedWeights.size(); ++i) {
    if ((signals.osc_e >> i) & 1) units += kFixedWeights[i] * fixed_factors_[i];
  }
  for (std::size_t i = 0; i < kBinaryWeights.size(); ++i) {
    if ((signals.osc_f >> i) & 1) units += kBinaryWeights[i] * binary_factors_[i];
  }
  return units;
}

CurrentLimitationDac::CurrentLimitationDac(double unit_current, const MismatchConfig& config,
                                           std::uint64_t seed)
    : unit_current_(unit_current), seed_(seed), reference_factor_(1.0) {
  LCOSC_REQUIRE(unit_current > 0.0, "unit current must be positive");
  // Independent streams per block so adding a block never shifts the
  // deviates of another (keeps found seeds stable across versions).
  Rng master(seed);
  reference_factor_ = 1.0 + master.normal(0.0, config.reference_sigma);
  Rng prescale_rng = master.fork(1);
  for (std::size_t i = 0; i < prescale_factors_.size(); ++i) {
    prescale_factors_[i] = 1.0 + prescale_rng.normal(0.0, config.prescaler_sigma);
  }
  Rng top_rng = master.fork(2);
  Rng bottom_rng = master.fork(3);
  top_ = MirrorBank(config, top_rng);
  bottom_ = MirrorBank(config, bottom_rng);
}

double CurrentLimitationDac::ideal_current(int code) const {
  return unit_current_ * multiplication_factor(code);
}

namespace {
std::size_t prescale_index(int factor) {
  switch (factor) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    case 8: return 3;
    default: throw ConfigError("invalid prescale factor");
  }
}
}  // namespace

double CurrentLimitationDac::top_current(int code) const {
  const ControlSignals s = encode_control(code);
  const int ideal_prescale = prescale_factor(s.osc_d);
  const double prescale =
      ideal_prescale * prescale_factors_[prescale_index(ideal_prescale)];
  return unit_current_ * reference_factor_ * prescale * top_.output_units(s);
}

double CurrentLimitationDac::bottom_current(int code) const {
  const ControlSignals s = encode_control(code);
  const int ideal_prescale = prescale_factor(s.osc_d);
  const double prescale =
      ideal_prescale * prescale_factors_[prescale_index(ideal_prescale)];
  return unit_current_ * reference_factor_ * prescale * bottom_.output_units(s);
}

double CurrentLimitationDac::output_current(int code) const {
  return 0.5 * (top_current(code) + bottom_current(code));
}

double CurrentLimitationDac::relative_step(int code) const {
  LCOSC_REQUIRE(code >= 1 && code < kDacCodeMax, "relative step defined for codes 1..126");
  const double i0 = output_current(code);
  const double i1 = output_current(code + 1);
  return (i1 - i0) / i0;
}

std::vector<int> CurrentLimitationDac::non_monotonic_codes() const {
  std::vector<int> codes;
  for (int code = 1; code < kDacCodeMax; ++code) {
    if (output_current(code + 1) <= output_current(code)) codes.push_back(code + 1);
  }
  return codes;
}

std::uint64_t find_seed_with_single_negative_step(int code, double unit_current,
                                                  const MismatchConfig& config,
                                                  std::uint64_t start_seed, int max_attempts) {
  LCOSC_REQUIRE(code >= 1 && code <= kDacCodeMax, "code out of range");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const std::uint64_t seed = start_seed + static_cast<std::uint64_t>(attempt);
    const CurrentLimitationDac dac(unit_current, config, seed);
    const std::vector<int> bad = dac.non_monotonic_codes();
    if (bad.size() == 1 && bad.front() == code) return seed;
  }
  throw ConvergenceError("no seed found producing a single negative step at the target code");
}

std::vector<std::pair<int, double>> monte_carlo_non_monotonicity(int trials,
                                                                 const MismatchConfig& config,
                                                                 std::uint64_t seed) {
  LCOSC_REQUIRE(trials > 0, "trials must be positive");
  // Major-carry transitions: first code of each segment (the step from the
  // previous segment's last code).
  const std::vector<int> carries = {16, 32, 48, 64, 80, 96, 112};
  std::vector<int> hits(carries.size(), 0);
  for (int t = 0; t < trials; ++t) {
    const CurrentLimitationDac dac(kDacUnitCurrent, config,
                                   seed + static_cast<std::uint64_t>(t));
    for (std::size_t c = 0; c < carries.size(); ++c) {
      const int code = carries[c];
      if (dac.output_current(code) <= dac.output_current(code - 1)) ++hits[c];
    }
  }
  std::vector<std::pair<int, double>> result;
  result.reserve(carries.size());
  for (std::size_t c = 0; c < carries.size(); ++c) {
    result.emplace_back(carries[c], static_cast<double>(hits[c]) / trials);
  }
  return result;
}

}  // namespace lcosc::dac
