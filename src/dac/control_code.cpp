#include "dac/control_code.h"

#include "common/constants.h"
#include "common/error.h"

namespace lcosc::dac {
namespace {

// Table 1 columns, indexed by segment.
constexpr std::array<std::uint8_t, 8> kOscD = {0b000, 0b000, 0b001, 0b001,
                                               0b011, 0b011, 0b111, 0b111};
constexpr std::array<std::uint8_t, 8> kOscE = {0b0000, 0b0001, 0b0001, 0b0011,
                                               0b0011, 0b0111, 0b0111, 0b1111};
constexpr std::array<int, 8> kShift = {0, 0, 0, 1, 1, 2, 2, 3};

void check_code(int code) {
  LCOSC_REQUIRE(code >= 0 && code <= kDacCodeMax, "DAC code out of range 0..127");
}

void check_segment(int segment) {
  LCOSC_REQUIRE(segment >= 0 && segment < kDacSegmentCount, "DAC segment out of range 0..7");
}

}  // namespace

int segment_of(int code) {
  check_code(code);
  return code >> 4;
}

int mirror_shift(int segment) {
  check_segment(segment);
  return kShift[static_cast<std::size_t>(segment)];
}

int segment_step(int segment) {
  check_segment(segment);
  return prescale_factor(kOscD[static_cast<std::size_t>(segment)]) << mirror_shift(segment);
}

int segment_range_min(int segment) {
  check_segment(segment);
  return multiplication_factor(segment * kDacCodesPerSegment);
}

int segment_range_max(int segment) {
  check_segment(segment);
  return multiplication_factor(segment * kDacCodesPerSegment + kDacCodesPerSegment - 1);
}

ControlSignals encode_control(int code) {
  check_code(code);
  const int segment = code >> 4;
  const int lsbs = code & 0xF;
  ControlSignals signals;
  signals.osc_d = kOscD[static_cast<std::size_t>(segment)];
  signals.osc_e = kOscE[static_cast<std::size_t>(segment)];
  signals.osc_f = static_cast<std::uint8_t>(lsbs << kShift[static_cast<std::size_t>(segment)]);
  return signals;
}

int prescale_factor(std::uint8_t osc_d) {
  LCOSC_REQUIRE(osc_d == 0b000 || osc_d == 0b001 || osc_d == 0b011 || osc_d == 0b111,
                "OscD must be a thermometer code");
  return static_cast<int>(osc_d) + 1;
}

int prescale_factor_raw(std::uint8_t osc_d) {
  LCOSC_REQUIRE(osc_d < 8, "OscD is a 3-bit bus");
  return 1 + (osc_d & 1) + 2 * ((osc_d >> 1) & 1) + 4 * ((osc_d >> 2) & 1);
}

int fixed_mirror_units(std::uint8_t osc_e) {
  LCOSC_REQUIRE(osc_e < 16, "OscE is a 4-bit bus");
  return 16 * (osc_e & 1) + 16 * ((osc_e >> 1) & 1) + 32 * ((osc_e >> 2) & 1) +
         64 * ((osc_e >> 3) & 1);
}

int active_gm_stages(std::uint8_t osc_e) {
  LCOSC_REQUIRE(osc_e < 16, "OscE is a 4-bit bus");
  return 1 + (osc_e & 1) + ((osc_e >> 1) & 1) + 2 * ((osc_e >> 2) & 1) + 4 * ((osc_e >> 3) & 1);
}

int multiplication_factor(const ControlSignals& signals) {
  return prescale_factor(signals.osc_d) *
         (fixed_mirror_units(signals.osc_e) + static_cast<int>(signals.osc_f));
}

int multiplication_factor(int code) {
  return multiplication_factor(encode_control(code));
}

std::array<char, 8> format_bus(std::uint8_t value, int bits) {
  LCOSC_REQUIRE(bits >= 1 && bits <= 7, "bus width must be 1..7");
  std::array<char, 8> out{};
  for (int i = 0; i < bits; ++i) {
    out[static_cast<std::size_t>(i)] = ((value >> (bits - 1 - i)) & 1) ? '1' : '0';
  }
  out[static_cast<std::size_t>(bits)] = '\0';
  return out;
}

}  // namespace lcosc::dac
