#include "dac/exponential_dac.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::dac {

PwlExponentialDac::PwlExponentialDac(double unit_current) : unit_current_(unit_current) {
  LCOSC_REQUIRE(unit_current > 0.0, "unit current must be positive");
}

int PwlExponentialDac::multiplication(int code) const {
  if (fault_bus_ == nullptr || !fault_bus_->active()) return multiplication_factor(code);
  // Faulted path: re-derive M from the control buses after the stuck-line
  // masks, using the raw prescaler law (a stuck OscD line can break the
  // thermometer coding the healthy decoder assumes).
  ControlSignals s = encode_control(code);
  s.osc_d = fault_bus_->apply_stuck(faults::DacBus::OscD, s.osc_d);
  s.osc_e = fault_bus_->apply_stuck(faults::DacBus::OscE, s.osc_e);
  s.osc_f = fault_bus_->apply_stuck(faults::DacBus::OscF, s.osc_f);
  if (fault_bus_->segment_dead(segment_of(code))) s.osc_f = 0;
  return prescale_factor_raw(s.osc_d) *
         (fixed_mirror_units(s.osc_e) + static_cast<int>(s.osc_f));
}

double PwlExponentialDac::current(int code) const {
  return unit_current_ * multiplication(code);
}

double PwlExponentialDac::relative_step(int code) const {
  LCOSC_REQUIRE(code >= 1 && code < kDacCodeMax, "relative step defined for codes 1..126");
  const int m0 = multiplication(code);
  const int m1 = multiplication(code + 1);
  return static_cast<double>(m1 - m0) / static_cast<double>(m0);
}

std::vector<CodePoint> PwlExponentialDac::transfer_table() const {
  std::vector<CodePoint> table;
  table.reserve(static_cast<std::size_t>(kDacCodeCount));
  for (int code = 0; code < kDacCodeCount; ++code) {
    CodePoint point;
    point.code = code;
    point.multiplication = multiplication(code);
    point.current = current(code);
    point.relative_step = (code >= 1 && code < kDacCodeMax) ? relative_step(code) : 0.0;
    table.push_back(point);
  }
  return table;
}

double PwlExponentialDac::max_relative_step(int first_code) const {
  double worst = 0.0;
  for (int code = std::max(first_code, 1); code < kDacCodeMax; ++code) {
    worst = std::max(worst, relative_step(code));
  }
  return worst;
}

double PwlExponentialDac::min_relative_step(int first_code) const {
  double best = 1e300;
  for (int code = std::max(first_code, 1); code < kDacCodeMax; ++code) {
    best = std::min(best, relative_step(code));
  }
  return best;
}

bool PwlExponentialDac::is_monotonic() const {
  for (int code = 0; code < kDacCodeMax; ++code) {
    if (multiplication(code + 1) <= multiplication(code)) return false;
  }
  return true;
}

double PwlExponentialDac::fitted_growth_ratio() const {
  // Least-squares slope of log M(code) vs code over codes 16..127.
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  int n = 0;
  for (int code = 16; code < kDacCodeCount; ++code) {
    const double x = code;
    const double y = std::log(static_cast<double>(multiplication(code)));
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
    ++n;
  }
  const double slope = (n * sum_xy - sum_x * sum_y) / (n * sum_xx - sum_x * sum_x);
  return std::exp(slope) - 1.0;  // per-code growth delta of Eq. 6
}

double PwlExponentialDac::max_exponential_deviation() const {
  const double delta = fitted_growth_ratio();
  // Re-fit the intercept for the fixed slope.
  double sum_log_ratio = 0.0;
  int n = 0;
  for (int code = 16; code < kDacCodeCount; ++code) {
    sum_log_ratio +=
        std::log(static_cast<double>(multiplication(code))) - code * std::log1p(delta);
    ++n;
  }
  const double intercept = std::exp(sum_log_ratio / n);

  double worst = 0.0;
  for (int code = 16; code < kDacCodeCount; ++code) {
    const double ideal = intercept * std::pow(1.0 + delta, code);
    const double deviation =
        std::abs(static_cast<double>(multiplication(code)) - ideal) / ideal;
    worst = std::max(worst, deviation);
  }
  return worst;
}

}  // namespace lcosc::dac
