// Alternative amplitude-control DAC transfer laws used by the ablation
// benches: the paper argues that a linear voltage step requires an
// exponential current control (Eq. 5); these variants let the regulation
// loop be run against linear and ideal-exponential controls to show why
// the PWL exponential was chosen.
#pragma once

#include <memory>
#include <string>

#include "common/constants.h"
#include "dac/exponential_dac.h"

namespace lcosc::dac {

// Abstract current-limitation control law: code -> current limit [A].
class AmplitudeControlLaw {
 public:
  virtual ~AmplitudeControlLaw() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int code_count() const { return kDacCodeCount; }
  [[nodiscard]] virtual double current(int code) const = 0;
  // Worst relative amplitude step over usable codes (>= first_code).
  [[nodiscard]] double max_relative_step(int first_code) const;
};

// The paper's PWL exponential law.
class PwlExponentialLaw final : public AmplitudeControlLaw {
 public:
  explicit PwlExponentialLaw(double unit_current = kDacUnitCurrent) : dac_(unit_current) {}
  [[nodiscard]] std::string name() const override { return "pwl-exponential"; }
  [[nodiscard]] double current(int code) const override { return dac_.current(code); }

 private:
  PwlExponentialDac dac_;
};

// Linear law with the same full-scale current: I(code) = code/127 * Imax.
// Its relative step explodes at low codes (100% at code 1), which is what
// breaks regulation of high-Q tanks.
class LinearLaw final : public AmplitudeControlLaw {
 public:
  explicit LinearLaw(double full_scale_current = kDacUnitCurrent * kDacFullScaleUnits)
      : full_scale_(full_scale_current) {}
  [[nodiscard]] std::string name() const override { return "linear"; }
  [[nodiscard]] double current(int code) const override;

 private:
  double full_scale_;
};

// Exact exponential law matched to the PWL endpoints: I(0)=0 and
// I(code) = I16 * r^(code-16) for code >= 1 with r chosen so that
// I(127) equals the PWL full scale.
class IdealExponentialLaw final : public AmplitudeControlLaw {
 public:
  explicit IdealExponentialLaw(double unit_current = kDacUnitCurrent);
  [[nodiscard]] std::string name() const override { return "ideal-exponential"; }
  [[nodiscard]] double current(int code) const override;
  [[nodiscard]] double growth_ratio() const { return ratio_; }

 private:
  double unit_current_;
  double ratio_;
};

// Factory for bench parameter sweeps.
enum class ControlLawKind { PwlExponential, Linear, IdealExponential };
[[nodiscard]] std::unique_ptr<AmplitudeControlLaw> make_control_law(
    ControlLawKind kind, double unit_current = kDacUnitCurrent);

}  // namespace lcosc::dac
