#include "obs/snapshot_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

namespace lcosc::obs {
namespace {

// --- tiny schema-directed JSON reader ------------------------------------
//
// The obs layer sits below common/ and service/, so it cannot use the
// service FlatJsonParser; this cursor understands exactly the nesting
// MetricsSnapshot::to_json and write_trace_jsonl produce (objects,
// arrays of numbers, strings, unsigned/float numbers, null).

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char expected) {
    skip_ws();
    if (pos >= text.size() || text[pos] != expected) return false;
    ++pos;
    return true;
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  bool parse_string(std::string& out) {
    out.clear();
    if (!consume('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return false;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos + 4 > text.size()) return false;
          char buf[5] = {text[pos], text[pos + 1], text[pos + 2], text[pos + 3], '\0'};
          pos += 4;
          const long code = std::strtol(buf, nullptr, 16);
          // Metric/span names are ASCII; anything else is dropped.
          if (code >= 0 && code < 0x80) out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  // Number or the literal `null` (what append_json_number emits for a
  // non-finite value); null parses as NaN.
  bool parse_number(double& out) {
    skip_ws();
    if (text.substr(pos, 4) == "null") {
      pos += 4;
      out = std::numeric_limits<double>::quiet_NaN();
      return true;
    }
    char buf[64];
    std::size_t n = 0;
    while (pos < text.size() && n + 1 < sizeof(buf)) {
      const char c = text[pos];
      const bool numeric = (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
                           c == 'e' || c == 'E';
      if (!numeric) break;
      buf[n++] = c;
      ++pos;
    }
    if (n == 0) return false;
    buf[n] = '\0';
    char* end = nullptr;
    out = std::strtod(buf, &end);
    return end == buf + n;
  }

  bool parse_u64(std::uint64_t& out) {
    skip_ws();
    char buf[32];
    std::size_t n = 0;
    while (pos < text.size() && n + 1 < sizeof(buf) && text[pos] >= '0' &&
           text[pos] <= '9') {
      buf[n++] = text[pos++];
    }
    if (n == 0) return false;
    buf[n] = '\0';
    char* end = nullptr;
    out = std::strtoull(buf, &end, 10);
    return end == buf + n;
  }

  // `{ "key": <value parsed by fn>, ... }`; fn returns false to abort.
  template <typename Fn>
  bool parse_object(Fn&& fn) {
    if (!consume('{')) return false;
    if (peek_is('}')) {
      ++pos;
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      if (!fn(key)) return false;
      if (peek_is(',')) {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_number_array(std::vector<double>& out) {
    out.clear();
    if (!consume('[')) return false;
    if (peek_is(']')) {
      ++pos;
      return true;
    }
    while (true) {
      double v = 0.0;
      if (!parse_number(v)) return false;
      out.push_back(v);
      if (peek_is(',')) {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_u64_array(std::vector<std::uint64_t>& out) {
    out.clear();
    if (!consume('[')) return false;
    if (peek_is(']')) {
      ++pos;
      return true;
    }
    while (true) {
      std::uint64_t v = 0;
      if (!parse_u64(v)) return false;
      out.push_back(v);
      if (peek_is(',')) {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }
};

// Shared temp + rename writer (inline: obs sits below common/atomic_file.h
// in the link order, same as write_chrome_trace).
bool write_text_atomic(const std::string& path, const std::string& body) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  const std::string temp = path + ".tmp";
  std::ofstream out(temp, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << body;
  out.flush();
  if (!out) {
    out.close();
    std::filesystem::remove(temp);
    return false;
  }
  out.close();
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp);
    return false;
  }
  return true;
}

void append_escaped_full(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

}  // namespace

// --- metrics snapshot ------------------------------------------------------

bool parse_metrics_snapshot(std::string_view text, MetricsSnapshot& out) {
  out = MetricsSnapshot{};
  Cursor cur{text};
  const bool ok = cur.parse_object([&](const std::string& section) {
    if (section == "counters") {
      return cur.parse_object([&](const std::string& name) {
        std::uint64_t value = 0;
        if (!cur.parse_u64(value)) return false;
        out.counters.push_back({name, value});
        return true;
      });
    }
    if (section == "gauges") {
      return cur.parse_object([&](const std::string& name) {
        GaugeSnapshot g;
        g.name = name;
        return cur.parse_object([&](const std::string& key) {
          if (key == "value") return cur.parse_number(g.value);
          if (key == "peak") return cur.parse_number(g.peak);
          return false;
        }) && (out.gauges.push_back(std::move(g)), true);
      });
    }
    if (section == "histograms") {
      return cur.parse_object([&](const std::string& name) {
        HistogramSnapshot h;
        h.name = name;
        // to_json omits min/max for empty histograms; default to the
        // merge identities so empty parts fold away.
        h.min = std::numeric_limits<double>::infinity();
        h.max = -std::numeric_limits<double>::infinity();
        const bool parsed = cur.parse_object([&](const std::string& key) {
          if (key == "bounds") return cur.parse_number_array(h.bounds);
          if (key == "counts") return cur.parse_u64_array(h.counts);
          if (key == "count") return cur.parse_u64(h.count);
          if (key == "min") return cur.parse_number(h.min);
          if (key == "max") return cur.parse_number(h.max);
          return false;
        });
        if (!parsed || h.counts.size() != h.bounds.size() + 1) return false;
        out.histograms.push_back(std::move(h));
        return true;
      });
    }
    return false;
  });
  if (!ok) {
    out = MetricsSnapshot{};
    return false;
  }
  return true;
}

MetricsSnapshot merge_metrics_snapshots(const std::vector<MetricsSnapshot>& parts) {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
  for (const MetricsSnapshot& part : parts) {
    for (const CounterSnapshot& c : part.counters) counters[c.name] += c.value;
    for (const HistogramSnapshot& h : part.histograms) {
      auto [it, inserted] = histograms.try_emplace(h.name, h);
      if (inserted) continue;
      HistogramSnapshot& into = it->second;
      if (into.bounds != h.bounds) continue;  // cross-binary mismatch: keep first
      for (std::size_t b = 0; b < into.counts.size(); ++b) into.counts[b] += h.counts[b];
      into.count += h.count;
      into.min = std::min(into.min, h.min);
      into.max = std::max(into.max, h.max);
    }
  }
  MetricsSnapshot out;
  out.counters.reserve(counters.size());
  for (auto& [name, value] : counters) out.counters.push_back({name, value});
  out.histograms.reserve(histograms.size());
  for (auto& [name, h] : histograms) out.histograms.push_back(std::move(h));
  return out;  // std::map iteration is already name-sorted
}

bool write_metrics_snapshot_json(const MetricsSnapshot& snapshot, const std::string& path) {
  return write_text_atomic(path, snapshot.to_json() + "\n");
}

// --- trace JSONL -----------------------------------------------------------

bool write_trace_jsonl(const std::vector<TraceEventRecord>& events, const std::string& path) {
  std::ostringstream out;
  out.precision(12);
  for (const TraceEventRecord& e : events) {
    std::string name;
    append_escaped_full(name, e.name);
    out << "{\"name\": \"" << name << "\", \"ph\": \"" << e.phase
        << "\", \"tid\": " << e.tid << ", \"ts\": " << e.ts_us << ", \"dur\": " << e.dur_us
        << "}\n";
  }
  return write_text_atomic(path, out.str());
}

bool parse_trace_jsonl(std::string_view text, std::vector<TraceEventRecord>& out) {
  std::size_t begin = 0;
  std::size_t lines = 0;
  std::size_t parsed = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    ++lines;
    TraceEventRecord event;
    std::string phase;
    bool has_name = false;
    Cursor cur{line};
    const bool ok = cur.parse_object([&](const std::string& key) {
      if (key == "name") {
        has_name = true;
        return cur.parse_string(event.name);
      }
      if (key == "ph") return cur.parse_string(phase);
      if (key == "tid") {
        std::uint64_t tid = 0;
        if (!cur.parse_u64(tid)) return false;
        event.tid = static_cast<std::uint32_t>(tid);
        return true;
      }
      if (key == "ts") return cur.parse_number(event.ts_us);
      if (key == "dur") return cur.parse_number(event.dur_us);
      return false;
    });
    // A torn tail from a killed writer loses that one line, nothing else.
    if (!ok || !has_name || phase.size() != 1) continue;
    event.phase = phase[0];
    out.push_back(std::move(event));
    ++parsed;
  }
  return lines == 0 || parsed > 0;
}

// --- fleet Chrome trace ----------------------------------------------------

bool write_fleet_chrome_trace(std::vector<FleetTraceProcess> processes,
                              const std::string& path, std::size_t dropped_events) {
  std::sort(processes.begin(), processes.end(),
            [](const FleetTraceProcess& a, const FleetTraceProcess& b) { return a.pid < b.pid; });
  std::ostringstream out;
  out.precision(12);
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\n"
      << "    \"process\": \"lcosc-fleet\",\n"
      << "    \"dropped_events\": " << dropped_events << "\n  },\n"
      << "  \"traceEvents\": [";
  bool first = true;
  for (FleetTraceProcess& proc : processes) {
    std::sort(proc.events.begin(), proc.events.end(),
              [](const TraceEventRecord& a, const TraceEventRecord& b) {
                if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;  // enclosing span first
                return a.tid < b.tid;
              });
    std::string pname;
    append_escaped_full(pname, proc.name);
    out << (first ? "\n" : ",\n") << "    {\"ph\": \"M\", \"pid\": " << proc.pid
        << ", \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": \"" << pname
        << "\"}}";
    first = false;
    for (const TraceEventRecord& e : proc.events) {
      std::string name;
      append_escaped_full(name, e.name);
      out << ",\n    {\"ph\": \"" << e.phase << "\", \"pid\": " << proc.pid
          << ", \"tid\": " << e.tid << ", \"ts\": " << e.ts_us << ", ";
      if (e.phase == 'X') out << "\"dur\": " << e.dur_us << ", ";
      if (e.phase == 'i') out << "\"s\": \"t\", ";
      out << "\"name\": \"" << name << "\"}";
    }
  }
  out << "\n  ]\n}\n";
  return write_text_atomic(path, out.str());
}

}  // namespace lcosc::obs
