// Snapshot serialization for the cross-process telemetry pipeline
// (DESIGN.md §15): shard workers persist their metrics registry and span
// buffers to per-shard files; the campaign coordinator parses them back
// and merges the fleet into one snapshot.
//
// Three interchange formats, all crash-tolerant:
//  - metrics snapshot JSON — exactly MetricsSnapshot::to_json, written
//    atomically (temp + rename), so a reader sees a whole file or none.
//  - trace JSONL — one flat object per buffered span/instant
//    ({"name": .., "ph": .., "tid": .., "ts": .., "dur": ..}); flat on
//    purpose so the service layer's FlatJsonParser can read it, and
//    line-oriented so a torn tail costs one event, not the file.
//  - fleet Chrome trace — the merged {"traceEvents": [...]} document
//    with one trace `pid` per shard worker, so Perfetto shows the whole
//    fleet on a single timeline.
//
// Merging reuses the PR-4 snapshot semantics: counters sum, histogram
// buckets sum (min of mins, max of maxes), and the result is sorted by
// name — order-independent, so the merged document is byte-identical
// for any shard count covering the same work.  Gauges model per-process
// instantaneous state and are intentionally dropped by the merge.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::obs {

// Parse a MetricsSnapshot::to_json document.  Returns false (and leaves
// `out` empty) on malformed input.  Histograms serialized with count == 0
// come back with min = +inf / max = -inf so they merge as identities.
[[nodiscard]] bool parse_metrics_snapshot(std::string_view text, MetricsSnapshot& out);

// Order-independent merge of worker snapshots: counters with the same
// name sum; histograms with the same name and identical bounds sum
// bucket-wise (min of mins, max of maxes); histograms whose bounds
// disagree keep the first occurrence (cannot happen between workers of
// one binary).  Gauges are dropped.  Result is sorted by name.
[[nodiscard]] MetricsSnapshot merge_metrics_snapshots(
    const std::vector<MetricsSnapshot>& parts);

// Write snapshot.to_json() + '\n' to `path` via temp + rename, creating
// parent directories.  Returns false when the file cannot be written.
bool write_metrics_snapshot_json(const MetricsSnapshot& snapshot, const std::string& path);

// Write the given trace events as flat JSONL via temp + rename.
bool write_trace_jsonl(const std::vector<TraceEventRecord>& events, const std::string& path);

// Parse trace JSONL.  Malformed lines (a torn tail from a killed writer)
// are skipped, not fatal; returns false only when nothing at all could
// be parsed from non-empty input.
bool parse_trace_jsonl(std::string_view text, std::vector<TraceEventRecord>& out);

// One trace process in the merged fleet timeline.
struct FleetTraceProcess {
  int pid = 0;        // Chrome trace pid (shard index)
  std::string name;   // process_name metadata ("shard 3 of 8")
  std::vector<TraceEventRecord> events;
};

// Write the merged {"traceEvents": [...]} document via temp + rename.
// Processes are ordered by pid and each process's events are sorted by
// (ts, dur desc, tid), so timestamps are monotone non-decreasing within
// every pid — the invariant Perfetto and validate_trace.py rely on.
bool write_fleet_chrome_trace(std::vector<FleetTraceProcess> processes,
                              const std::string& path, std::size_t dropped_events = 0);

}  // namespace lcosc::obs
