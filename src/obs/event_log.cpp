#include "obs/event_log.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

namespace lcosc::obs {
namespace {

std::atomic<bool> g_events_enabled{false};
std::atomic<std::uint64_t> g_sequence{0};
std::atomic<int> g_event_shard{-1};

// Innermost context label of the calling thread (nullptr = none).
thread_local const std::string* t_context = nullptr;

struct Sink {
  std::mutex mutex;
  std::ofstream file;
  bool file_open = false;
  std::vector<std::string>* capture = nullptr;
};

Sink& sink() {
  static Sink* s = new Sink();  // leaked: emission may outlive static teardown
  return *s;
}

void update_enabled_locked(const Sink& s) {
  g_events_enabled.store(s.file_open || s.capture != nullptr, std::memory_order_relaxed);
}

bool open_file_locked(Sink& s, const std::string& path) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  if (s.file_open) s.file.close();
  s.file.open(path, std::ios::trunc);
  s.file_open = static_cast<bool>(s.file);
  update_enabled_locked(s);
  return s.file_open;
}

bool apply_events_env() {
  const char* path = std::getenv("LCOSC_EVENTS");
  if (path != nullptr && *path != '\0') {
    Sink& s = sink();
    const std::lock_guard<std::mutex> lock(s.mutex);
    open_file_locked(s, path);
  }
  return true;
}

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void emit_line(const std::string& line) {
  Sink& s = sink();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.file_open) {
    s.file << line << '\n';
    s.file.flush();
  }
  if (s.capture != nullptr) s.capture->push_back(line);
}

}  // namespace

bool events_enabled() {
  static const bool init = apply_events_env();
  (void)init;
  return g_events_enabled.load(std::memory_order_relaxed);
}

bool open_event_log(const std::string& path) {
  (void)events_enabled();  // force the env read first
  Sink& s = sink();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return open_file_locked(s, path);
}

void close_event_log() {
  (void)events_enabled();
  Sink& s = sink();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.file_open) s.file.close();
  s.file_open = false;
  update_enabled_locked(s);
}

void set_event_shard(int shard) {
  g_event_shard.store(shard, std::memory_order_relaxed);
}

void set_event_capture(std::vector<std::string>* capture) {
  (void)events_enabled();
  Sink& s = sink();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.capture = capture;
  update_enabled_locked(s);
}

Event::Event(std::string_view type) {
  line_.reserve(96);
  line_ += "{\"type\": \"";
  append_escaped(line_, type);
  line_ += "\", \"seq\": ";
  line_ += std::to_string(g_sequence.fetch_add(1, std::memory_order_relaxed));
  const int shard = g_event_shard.load(std::memory_order_relaxed);
  if (shard >= 0) {
    line_ += ", \"shard\": ";
    line_ += std::to_string(shard);
  }
}

Event& Event::num(std::string_view key, double value) {
  line_ += ", \"";
  append_escaped(line_, key);
  line_ += "\": ";
  if (std::isfinite(value)) {
    std::ostringstream v;
    v << value;
    line_ += v.str();
  } else {
    line_ += "null";
  }
  return *this;
}

Event& Event::integer(std::string_view key, long long value) {
  line_ += ", \"";
  append_escaped(line_, key);
  line_ += "\": ";
  line_ += std::to_string(value);
  return *this;
}

Event& Event::str(std::string_view key, std::string_view value) {
  line_ += ", \"";
  append_escaped(line_, key);
  line_ += "\": \"";
  append_escaped(line_, value);
  line_ += "\"";
  return *this;
}

Event& Event::boolean(std::string_view key, bool value) {
  line_ += ", \"";
  append_escaped(line_, key);
  line_ += value ? "\": true" : "\": false";
  return *this;
}

Event::~Event() {
  if (t_context != nullptr) {
    line_ += ", \"ctx\": \"";
    append_escaped(line_, *t_context);
    line_ += "\"";
  }
  line_ += "}";
  emit_line(line_);
}

EventContext::EventContext(std::string label)
    : previous_(t_context), label_(std::move(label)) {
  t_context = &label_;
}

EventContext::~EventContext() { t_context = previous_; }

}  // namespace lcosc::obs
