// Scoped span tracer emitting Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
//   LCOSC_SPAN("transient.step");             // RAII span over this scope
//   obs::trace_instant("safety.trip:low_amplitude");
//   obs::write_chrome_trace("artifacts/trace_campaigns.json");
//
// Spans record a name, the thread id (small sequential integer) and wall
// time in microseconds since process start (steady clock, so timestamps
// are monotone per thread).  Storage is a per-thread buffer merged and
// sorted at write time; a process-wide event cap bounds memory on long
// campaigns (overflow is counted, never silently dropped from the
// metadata).
//
// Enablement mirrors the metrics registry: the LCOSC_TRACE environment
// variable is read once at first use, set_trace_enabled() overrides it.
// A disabled span is a branch-predictable no-op (one relaxed atomic load).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lcosc::obs {

// True when spans/instants are recorded.  First call applies LCOSC_TRACE.
[[nodiscard]] bool trace_enabled();
void set_trace_enabled(bool enabled);

// Hard cap on buffered events; past it events are counted as dropped.
// Adjustable before a run (not thread-safe against concurrent tracing).
void set_trace_event_limit(std::size_t limit);

class Span {
 public:
  // `name` must outlive the span (string literals); the overhead when
  // tracing is disabled is one atomic load and a branch.
  explicit Span(const char* name);
  // Dynamic label (campaign case names).
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  const char* literal_ = nullptr;
  double start_us_ = 0.0;
  bool active_ = false;
};

// Zero-duration "i" event (detector trips, mode latches).
void trace_instant(std::string name);

struct TraceEventRecord {
  std::string name;
  char phase = 'X';  // 'X' complete span, 'i' instant
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;  // 0 for instants

  friend bool operator==(const TraceEventRecord&, const TraceEventRecord&) = default;
};

// Merged copy of every buffered event, sorted by (tid, ts_us).
[[nodiscard]] std::vector<TraceEventRecord> trace_snapshot();
[[nodiscard]] std::size_t trace_event_count();
[[nodiscard]] std::size_t trace_dropped_count();
void clear_trace();

// Write {"traceEvents": [...]} to `path`, creating parent directories.
// Returns false when the file cannot be opened.  The buffer is left
// intact (call clear_trace() to start a fresh capture).
bool write_chrome_trace(const std::string& path);

#define LCOSC_OBS_CONCAT_IMPL(a, b) a##b
#define LCOSC_OBS_CONCAT(a, b) LCOSC_OBS_CONCAT_IMPL(a, b)
#define LCOSC_SPAN(name) \
  const ::lcosc::obs::Span LCOSC_OBS_CONCAT(lcosc_span_, __LINE__)(name)

}  // namespace lcosc::obs
