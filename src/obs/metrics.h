// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms for the simulation engines and campaign runners.
//
// Design constraints (DESIGN.md §10):
//  - The disabled path is a branch-predictable no-op: every mutator first
//    reads one relaxed atomic flag and returns.  Campaign hot loops may
//    therefore keep their instrumentation compiled in unconditionally.
//  - Counters and histograms use per-thread sharded storage (a fixed
//    array of cacheline-padded atomic slots indexed by a thread-local
//    shard id), so parallel campaign workers never contend on a shared
//    cell.  Aggregation happens only at snapshot time, and every merge
//    (integer sums, min/max) is order-independent, so the merged totals
//    are identical for any LCOSC_THREADS worker count.
//  - Gauges model instantaneous pool/engine state (queue depth, busy
//    workers); they are single atomic cells with a peak watermark and are
//    exempt from the cross-worker determinism contract.
//
// Enablement: the LCOSC_METRICS environment variable (1/0, true/false,
// on/off) is read once at first use; set_metrics_enabled() overrides it
// programmatically at any time.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lcosc::obs {

// --- enablement -----------------------------------------------------------

// True when metric mutations are recorded.  First call applies the
// LCOSC_METRICS environment variable; later calls are one relaxed load.
[[nodiscard]] bool metrics_enabled();
void set_metrics_enabled(bool enabled);

// Parse a boolean environment flag: unset -> `fallback`; "1"/"true"/"on"
// (case-insensitive) -> true; "0"/"false"/"off" -> false; anything else
// -> `fallback`.  Shared by the LCOSC_METRICS / LCOSC_TRACE toggles and
// exposed so benches can default a toggle on while still honouring an
// explicit =0 from the user.
[[nodiscard]] bool env_flag(const char* name, bool fallback);

// --- storage geometry -----------------------------------------------------

// Number of per-thread shards per counter/histogram.  Thread shard ids
// are assigned round-robin; two threads may share a slot (updates stay
// atomic), so this bounds memory, not correctness.
inline constexpr std::size_t kMetricShards = 32;

// Upper bound on histogram bucket-boundary count (buckets = bounds + 1
// including the overflow bucket).
inline constexpr std::size_t kMaxHistogramBounds = 23;

namespace detail {
// Shard index of the calling thread (stable per thread).
[[nodiscard]] std::size_t thread_shard();
}  // namespace detail

// --- metric kinds ---------------------------------------------------------

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (!metrics_enabled()) return;
    shards_[detail::thread_shard()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset();

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  std::string name_;
  std::array<Shard, kMetricShards> shards_{};
};

// Instantaneous value with a peak watermark.  set() overwrites (last
// writer wins); add() adjusts atomically, so paired add(+1)/add(-1) from
// many threads track a live level (e.g. busy workers).
class Gauge {
 public:
  void set(double value);
  void add(double delta);

  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  [[nodiscard]] double peak() const { return peak_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset();

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void raise_peak(double candidate);

  std::string name_;
  std::atomic<double> value_{0.0};
  std::atomic<double> peak_{0.0};
};

// Fixed-bucket histogram: bucket i counts samples <= bounds[i]; the last
// bucket absorbs everything above bounds.back().  Bucket counts and the
// observed min/max merge order-independently across shards.
class Histogram {
 public:
  void record(double value) { record_many(value, 1); }
  void record_many(double value, std::uint64_t count);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const;
  // Smallest / largest recorded sample; +inf / -inf when empty.
  [[nodiscard]] double min_seen() const { return min_.load(std::memory_order_relaxed); }
  [[nodiscard]] double max_seen() const { return max_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);

  [[nodiscard]] std::size_t bucket_of(double value) const;

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kMaxHistogramBounds + 1> counts{};
  };

  std::string name_;
  std::vector<double> bounds_;  // ascending upper bounds
  std::array<Shard, kMetricShards> shards_{};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// --- snapshot -------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
  friend bool operator==(const CounterSnapshot&, const CounterSnapshot&) = default;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
  double peak = 0.0;
  friend bool operator==(const GaugeSnapshot&, const GaugeSnapshot&) = default;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double min = 0.0;  // only meaningful when count > 0
  double max = 0.0;
  friend bool operator==(const HistogramSnapshot&, const HistogramSnapshot&) = default;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;      // sorted by name
  std::vector<GaugeSnapshot> gauges;          // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  [[nodiscard]] const CounterSnapshot* find_counter(std::string_view name) const;
  [[nodiscard]] const GaugeSnapshot* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* find_histogram(std::string_view name) const;

  // JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}
  // with each line indented by `indent` spaces (benches embed this into
  // their BENCH_*.json "telemetry" section).
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

// Quantile estimate from a fixed-bucket histogram snapshot, q in [0, 1]
// (clamped).  Interpolation is documented and deterministic:
//  - the target rank is q * count; the answer lies in the first bucket
//    whose cumulative count reaches it;
//  - within that bucket the value is linearly interpolated between the
//    bucket's edges by (rank - cumulative_before) / bucket_count;
//  - bucket 0's lower edge is the observed min, the overflow bucket's
//    upper edge is the observed max (the only finite edges available);
//  - the result is clamped to [min, max], so a single-valued histogram
//    returns that value exactly and a fully saturated overflow bucket
//    interpolates between bounds.back() and max instead of diverging.
// Returns quiet NaN for an empty histogram.
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& histogram, double q);

// --- registry -------------------------------------------------------------

class MetricsRegistry {
 public:
  // Process-wide instance (never destroyed, so instrumented code may run
  // during static teardown).
  static MetricsRegistry& instance();

  // Find-or-create by name; returned references stay valid for the
  // process lifetime, so hot paths cache them in function-local statics.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `bounds` must be non-empty, ascending and at most kMaxHistogramBounds
  // long; a second registration of the same name ignores the bounds and
  // returns the existing histogram.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  // Zero every value; definitions (names, bucket bounds) survive.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace lcosc::obs
