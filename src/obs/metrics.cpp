#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lcosc::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

bool parse_flag(const char* text, bool fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  std::string v(text);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  return fallback;
}

bool apply_metrics_env() {
  g_metrics_enabled.store(parse_flag(std::getenv("LCOSC_METRICS"), false),
                          std::memory_order_relaxed);
  return true;
}

// Atomic min/max over doubles via CAS (order-independent merge).
void atomic_min(std::atomic<double>& cell, double candidate) {
  double cur = cell.load(std::memory_order_relaxed);
  while (candidate < cur &&
         !cell.compare_exchange_weak(cur, candidate, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& cell, double candidate) {
  double cur = cell.load(std::memory_order_relaxed);
  while (candidate > cur &&
         !cell.compare_exchange_weak(cur, candidate, std::memory_order_relaxed)) {
  }
}

void append_json_number(std::ostringstream& out, double v) {
  // JSON has no inf/nan literals; clamp to null.
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  out << v;
}

}  // namespace

bool metrics_enabled() {
  static const bool init = apply_metrics_env();
  (void)init;
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  // Force the env read first so a later first call cannot overwrite this.
  (void)metrics_enabled();
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool env_flag(const char* name, bool fallback) {
  return parse_flag(std::getenv(name), fallback);
}

namespace detail {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace detail

// --- Counter --------------------------------------------------------------

std::uint64_t Counter::total() const {
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.value.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

// --- Gauge ----------------------------------------------------------------

void Gauge::set(double value) {
  if (!metrics_enabled()) return;
  value_.store(value, std::memory_order_relaxed);
  raise_peak(value);
}

void Gauge::add(double delta) {
  if (!metrics_enabled()) return;
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
  raise_peak(cur + delta);
}

void Gauge::raise_peak(double candidate) { atomic_max(peak_, candidate); }

void Gauge::reset() {
  value_.store(0.0, std::memory_order_relaxed);
  peak_.store(0.0, std::memory_order_relaxed);
}

// --- Histogram ------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty() || bounds_.size() > kMaxHistogramBounds ||
      !std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram '" + name_ +
                                "': bounds must be non-empty, ascending and at most " +
                                std::to_string(kMaxHistogramBounds) + " long");
  }
}

std::size_t Histogram::bucket_of(double value) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::record_many(double value, std::uint64_t count) {
  if (!metrics_enabled() || count == 0) return;
  shards_[detail::thread_shard()].counts[bucket_of(value)].fetch_add(
      count, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : bucket_counts()) sum += c;
  return sum;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
  }
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

// --- snapshot -------------------------------------------------------------

namespace {

template <typename T>
const T* find_by_name(const std::vector<T>& items, std::string_view name) {
  for (const T& item : items) {
    if (item.name == name) return &item;
  }
  return nullptr;
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::find_counter(std::string_view name) const {
  return find_by_name(counters, name);
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(std::string_view name) const {
  return find_by_name(histograms, name);
}

std::string MetricsSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  std::ostringstream out;
  out << "{\n" << pad << "  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << pad << "    \"" << counters[i].name
        << "\": " << counters[i].value;
  }
  out << (counters.empty() ? "" : "\n" + pad + "  ") << "},\n";

  out << pad << "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << pad << "    \"" << gauges[i].name << "\": {\"value\": ";
    append_json_number(out, gauges[i].value);
    out << ", \"peak\": ";
    append_json_number(out, gauges[i].peak);
    out << "}";
  }
  out << (gauges.empty() ? "" : "\n" + pad + "  ") << "},\n";

  out << pad << "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out << (i == 0 ? "\n" : ",\n") << pad << "    \"" << h.name << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out << ", ";
      append_json_number(out, h.bounds[b]);
    }
    out << "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out << ", ";
      out << h.counts[b];
    }
    out << "], \"count\": " << h.count;
    if (h.count > 0) {
      out << ", \"min\": ";
      append_json_number(out, h.min);
      out << ", \"max\": ";
      append_json_number(out, h.max);
    }
    out << "}";
  }
  out << (histograms.empty() ? "" : "\n" + pad + "  ") << "}\n" << pad << "}";
  return out.str();
}

double histogram_quantile(const HistogramSnapshot& histogram, double q) {
  if (histogram.count == 0 || histogram.counts.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(histogram.count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
    const double in_bucket = static_cast<double>(histogram.counts[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    const double lo = (i == 0) ? histogram.min : histogram.bounds[i - 1];
    const double hi = (i < histogram.bounds.size()) ? histogram.bounds[i] : histogram.max;
    const double fraction = std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
    return std::clamp(lo + fraction * (hi - lo), histogram.min, histogram.max);
  }
  return histogram.max;  // q == 1 landing past the last occupied bucket
}

// --- registry -------------------------------------------------------------

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: campaign threads may flush counters during static
  // teardown, after a normal static's destructor would have run.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) {
    if (c->name_ == name) return *c;
  }
  counters_.push_back(std::unique_ptr<Counter>(new Counter(std::string(name))));
  return *counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& g : gauges_) {
    if (g->name_ == name) return *g;
  }
  gauges_.push_back(std::unique_ptr<Gauge>(new Gauge(std::string(name))));
  return *gauges_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& h : histograms_) {
    if (h->name_ == name) return *h;
  }
  histograms_.push_back(
      std::unique_ptr<Histogram>(new Histogram(std::string(name), std::move(bounds))));
  return *histograms_.back();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& c : counters_) {
      snap.counters.push_back({c->name_, c->total()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& g : gauges_) {
      snap.gauges.push_back({g->name_, g->value(), g->peak()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& h : histograms_) {
      HistogramSnapshot hs;
      hs.name = h->name_;
      hs.bounds = h->bounds_;
      hs.counts = h->bucket_counts();
      hs.count = 0;
      for (const std::uint64_t c : hs.counts) hs.count += c;
      hs.min = h->min_seen();
      hs.max = h->max_seen();
      snap.histograms.push_back(std::move(hs));
    }
  }
  // Registration order depends on which thread touched a metric first;
  // sort by name so snapshots are comparable across worker counts.
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) c->reset();
  for (const auto& g : gauges_) g->reset();
  for (const auto& h : histograms_) h->reset();
}

}  // namespace lcosc::obs
