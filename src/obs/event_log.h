// Structured campaign event log: typed events serialized as one JSON
// object per line (JSONL), replacing free-text stderr diagnostics for
// machine-readable runs.
//
//   if (obs::events_enabled()) {
//     obs::Event("safety.trip").str("channel", "low_amplitude").num("t", t);
//   }
//
// Each line carries the event type, a global sequence number, the
// emitting thread's trace id and the innermost EventContext label (the
// campaign runner tags each case, so a detector trip deep inside the
// solver is attributable to its fault id).  The sink is either a JSONL
// file (open_event_log / LCOSC_EVENTS=<path>) or an in-memory capture
// vector for tests; emission is serialized under one mutex and flushed
// per line, so concurrent campaign workers never interleave and a
// crashed run keeps every event up to the crash.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lcosc::obs {

// True when any sink is installed.  First call applies the LCOSC_EVENTS
// environment variable (a JSONL file path); later calls are one relaxed
// atomic load, so instrumented hot paths may guard on it freely.
[[nodiscard]] bool events_enabled();

// Open a JSONL file sink (truncating).  Returns false if the file cannot
// be opened.  Parent directories are created.
bool open_event_log(const std::string& path);
void close_event_log();

// Route events into *sink (one JSONL line per event) instead of /
// alongside the file sink; nullptr detaches.  Test hook.
void set_event_capture(std::vector<std::string>* sink);

// Tag every subsequent event line with a `"shard": n` field so lines
// stay attributable after the coordinator concatenates per-shard logs
// into one fleet file (DESIGN.md §15).  Pass -1 (the default) to omit.
void set_event_shard(int shard);

// Builder for one event; the destructor serializes and emits the line.
// Construct only behind an events_enabled() check to keep disabled paths
// allocation-free.
class Event {
 public:
  explicit Event(std::string_view type);
  ~Event();

  Event& num(std::string_view key, double value);
  Event& integer(std::string_view key, long long value);
  Event& str(std::string_view key, std::string_view value);
  Event& boolean(std::string_view key, bool value);

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

 private:
  std::string line_;
};

// RAII thread-local context label attached to every event emitted while
// in scope (innermost wins).  Campaign runners scope one per case.
class EventContext {
 public:
  explicit EventContext(std::string label);
  ~EventContext();

  EventContext(const EventContext&) = delete;
  EventContext& operator=(const EventContext&) = delete;

 private:
  const std::string* previous_;
  std::string label_;
};

}  // namespace lcosc::obs
