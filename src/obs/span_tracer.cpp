#include "obs/span_tracer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/metrics.h"  // env_flag

namespace lcosc::obs {
namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_trace_enabled{false};
std::atomic<std::size_t> g_event_count{0};
std::atomic<std::size_t> g_dropped_count{0};
std::atomic<std::size_t> g_event_limit{1u << 20};  // ~1M events

double now_us() {
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

// Per-thread event buffer.  The owning thread appends under the buffer
// mutex (uncontended except during snapshot/clear), so snapshots from
// another thread are race-free under TSan.
struct ThreadBuffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::vector<TraceEventRecord> events;
};

struct Tracer {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

Tracer& tracer() {
  static Tracer* t = new Tracer();  // leaked: see MetricsRegistry::instance
  return *t;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Tracer& t = tracer();
    const std::lock_guard<std::mutex> lock(t.mutex);
    b->tid = t.next_tid++;
    t.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void push_event(TraceEventRecord&& event) {
  if (g_event_count.fetch_add(1, std::memory_order_relaxed) >=
      g_event_limit.load(std::memory_order_relaxed)) {
    g_event_count.fetch_sub(1, std::memory_order_relaxed);
    g_dropped_count.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ThreadBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

bool apply_trace_env() {
  g_trace_enabled.store(env_flag("LCOSC_TRACE", false), std::memory_order_relaxed);
  return true;
}

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
}

}  // namespace

bool trace_enabled() {
  static const bool init = apply_trace_env();
  (void)init;
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled) {
  (void)trace_enabled();  // force the env read first
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void set_trace_event_limit(std::size_t limit) {
  g_event_limit.store(limit, std::memory_order_relaxed);
}

Span::Span(const char* name) {
  if (!trace_enabled()) return;
  literal_ = name;
  start_us_ = now_us();
  active_ = true;
}

Span::Span(std::string name) {
  if (!trace_enabled()) return;
  name_ = std::move(name);
  start_us_ = now_us();
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  TraceEventRecord event;
  event.name = literal_ != nullptr ? std::string(literal_) : std::move(name_);
  event.phase = 'X';
  event.ts_us = start_us_;
  event.dur_us = now_us() - start_us_;
  push_event(std::move(event));
}

void trace_instant(std::string name) {
  if (!trace_enabled()) return;
  TraceEventRecord event;
  event.name = std::move(name);
  event.phase = 'i';
  event.ts_us = now_us();
  push_event(std::move(event));
}

std::vector<TraceEventRecord> trace_snapshot() {
  std::vector<TraceEventRecord> out;
  Tracer& t = tracer();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(t.mutex);
    buffers = t.buffers;
  }
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEventRecord& a, const TraceEventRecord& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.dur_us > b.dur_us;  // enclosing span first
  });
  return out;
}

std::size_t trace_event_count() { return g_event_count.load(std::memory_order_relaxed); }

std::size_t trace_dropped_count() { return g_dropped_count.load(std::memory_order_relaxed); }

void clear_trace() {
  Tracer& t = tracer();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(t.mutex);
    buffers = t.buffers;
  }
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
  }
  g_event_count.store(0, std::memory_order_relaxed);
  g_dropped_count.store(0, std::memory_order_relaxed);
}

bool write_chrome_trace(const std::string& path) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  // Write-to-temp + rename so a process killed mid-emit never leaves a
  // truncated trace file (inline here: the obs layer sits below
  // common/atomic_file.h in the link order).
  const std::string temp = path + ".tmp";
  std::ofstream out(temp, std::ios::binary | std::ios::trunc);
  if (!out) return false;

  const std::vector<TraceEventRecord> events = trace_snapshot();
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\n"
      << "    \"process\": \"lcosc\",\n"
      << "    \"dropped_events\": " << trace_dropped_count() << "\n  },\n"
      << "  \"traceEvents\": [\n"
      << "    {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
         "\"args\": {\"name\": \"lcosc\"}}";
  for (const TraceEventRecord& e : events) {
    std::string name;
    append_escaped(name, e.name);
    out << ",\n    {\"ph\": \"" << e.phase << "\", \"pid\": 1, \"tid\": " << e.tid
        << ", \"ts\": " << e.ts_us << ", ";
    if (e.phase == 'X') out << "\"dur\": " << e.dur_us << ", ";
    if (e.phase == 'i') out << "\"s\": \"t\", ";
    out << "\"name\": \"" << name << "\"}";
  }
  out << "\n  ]\n}\n";
  out.flush();
  if (!out) {
    out.close();
    std::filesystem::remove(temp);
    return false;
  }
  out.close();
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp);
    return false;
  }
  return true;
}

}  // namespace lcosc::obs
