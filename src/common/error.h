// Error handling for the lcosc library.
//
// The library throws `lcosc::Error` (or a subclass) for all recoverable
// failures: invalid configuration, non-convergence of a solver, malformed
// netlists.  Programming errors (violated preconditions that indicate a bug
// in the caller) are checked with LCOSC_REQUIRE which also throws, so unit
// tests can exercise precondition violations without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace lcosc {

// Base class for all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Invalid user-supplied configuration or arguments.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

// An iterative solver failed to converge within its budget.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

// A netlist is structurally invalid (unknown node, singular topology...).
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

// A bounded computation (per-case step or wall budget of a campaign
// simulation) ran out of budget before finishing.  Campaign runners map
// this to a Timeout outcome instead of a hard failure.
class BudgetExceededError : public Error {
 public:
  explicit BudgetExceededError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_requirement_failure(const char* condition, const char* file, int line,
                                            const std::string& message);
}  // namespace detail

// Precondition check.  Usage:
//   LCOSC_REQUIRE(code >= 0 && code <= kDacCodeMax, "DAC code out of range");
#define LCOSC_REQUIRE(cond, message)                                                     \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      ::lcosc::detail::throw_requirement_failure(#cond, __FILE__, __LINE__, (message)); \
    }                                                                                    \
  } while (false)

}  // namespace lcosc
