#include "common/cli_parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.h"

namespace lcosc {

namespace {

// Shared shape of every strict parse: non-empty, whole-string consumption
// (strtol* skip leading whitespace; trailing bytes are the typo we are
// here to catch), and no range overflow.
template <typename Value, typename Parse>
Value parse_whole(const std::string& what, const std::string& text, Parse&& parse,
                  const char* kind) {
  errno = 0;
  char* end = nullptr;
  const Value value = parse(text.c_str(), &end);
  if (text.empty() || end == text.c_str() || *end != '\0') {
    throw ConfigError(what + ": '" + text + "' is not " + kind);
  }
  if (errno == ERANGE) {
    throw ConfigError(what + ": '" + text + "' is out of range");
  }
  return value;
}

}  // namespace

long long parse_cli_ll(const std::string& what, const std::string& text) {
  return parse_whole<long long>(
      what, text, [](const char* s, char** end) { return std::strtoll(s, end, 10); },
      "an integer");
}

int parse_cli_int(const std::string& what, const std::string& text) {
  const long long value = parse_cli_ll(what, text);
  if (value < std::numeric_limits<int>::min() || value > std::numeric_limits<int>::max()) {
    throw ConfigError(what + ": '" + text + "' is out of range");
  }
  return static_cast<int>(value);
}

std::uint64_t parse_cli_u64(const std::string& what, const std::string& text) {
  // strtoull silently wraps negative input ("-1" -> 2^64-1); reject the
  // sign up front.
  if (!text.empty() && text.find('-') != std::string::npos) {
    throw ConfigError(what + ": '" + text + "' is not a non-negative integer");
  }
  return parse_whole<unsigned long long>(
      what, text, [](const char* s, char** end) { return std::strtoull(s, end, 10); },
      "a non-negative integer");
}

double parse_cli_double(const std::string& what, const std::string& text) {
  const double value = parse_whole<double>(
      what, text, [](const char* s, char** end) { return std::strtod(s, end); },
      "a number");
  if (!std::isfinite(value)) {
    throw ConfigError(what + ": '" + text + "' is not a finite number");
  }
  return value;
}

}  // namespace lcosc
