// Shared per-case bookkeeping for campaign-shaped workloads (FMEA fault
// sweeps, Monte-Carlo tolerance analysis).
//
// A hardened campaign never aborts on a failing case: each case runs
// through run_guarded_case, which converts exceptions into a recorded
// outcome (with the message and the retry count) so the remaining cases
// complete and the report stays index-stable for any worker count.
#pragma once

#include <cstddef>
#include <exception>
#include <string>
#include <vector>

#include "common/error.h"

namespace lcosc {

enum class CaseOutcome {
  Ok,               // the case ran to completion (detection may still differ)
  Undetected,       // ran, but the expected detection channel never fired
  SimulationError,  // the simulation threw; `error` holds the message
  Timeout,          // the per-case step/wall budget was exceeded
};

[[nodiscard]] std::string to_string(CaseOutcome outcome);

struct CampaignCase {
  CaseOutcome outcome = CaseOutcome::Ok;
  std::string error;  // exception message for SimulationError / Timeout
  int retries = 0;    // re-runs performed before reaching this outcome

  // The simulation produced a result row (possibly an undetected one).
  [[nodiscard]] bool completed() const {
    return outcome == CaseOutcome::Ok || outcome == CaseOutcome::Undetected;
  }
  friend bool operator==(const CampaignCase&, const CampaignCase&) = default;
};

// Bounded exponential backoff between case retries.  The default
// (initial_ms == 0) never sleeps, so the retry policy -- attempt count,
// recorded outcomes, report bytes -- is exactly the pre-backoff one;
// enabling it only spaces the re-runs out in wall time (the campaign
// service uses it so a wedged solver does not spin a shard hot).
struct RetryBackoff {
  int initial_ms = 0;       // delay before the first re-run; 0 disables
  double multiplier = 2.0;  // growth per further re-run
  int max_ms = 2000;        // ceiling on any single delay

  [[nodiscard]] bool enabled() const { return initial_ms > 0; }
  friend bool operator==(const RetryBackoff&, const RetryBackoff&) = default;
};

// Delay, in milliseconds, slept before re-run `attempt` (1-based: the
// first re-run is attempt 1).  Pure: initial_ms * multiplier^(attempt-1)
// clamped to max_ms; 0 when backoff is disabled.
[[nodiscard]] int retry_backoff_delay_ms(const RetryBackoff& backoff, int attempt);

namespace detail {
// Counts campaign.case.retries and sleeps the backoff delay (if any)
// before re-run `attempt`.
void note_case_retry(const RetryBackoff& backoff, int attempt);
// Counts campaign.case.timeouts.
void note_case_timeout();
}  // namespace detail

// Run `attempt(k)` with graceful degradation.  k is the attempt index:
// 0 is the nominal run; on ConvergenceError the case is re-run with
// k+1 (the caller tightens its solver options per k) up to `max_retries`
// times, sleeping the (bounded exponential) backoff delay between
// re-runs.  BudgetExceededError maps to Timeout (no retry: budgets are
// deterministic).  Any other exception fails the case immediately.  The
// returned status is Ok on success; fault campaigns may downgrade it to
// Undetected after inspecting the result.
template <typename Fn>
[[nodiscard]] CampaignCase run_guarded_case(Fn&& attempt, int max_retries = 1,
                                            const RetryBackoff& backoff = {}) {
  CampaignCase status;
  for (int k = 0;; ++k) {
    status.retries = k;
    try {
      attempt(k);
      return status;
    } catch (const BudgetExceededError& e) {
      status.outcome = CaseOutcome::Timeout;
      status.error = e.what();
      detail::note_case_timeout();
      return status;
    } catch (const ConvergenceError& e) {
      if (k >= max_retries) {
        status.outcome = CaseOutcome::SimulationError;
        status.error = e.what();
        return status;
      }
      // Retry with tightened options.
      detail::note_case_retry(backoff, k + 1);
    } catch (const std::exception& e) {
      status.outcome = CaseOutcome::SimulationError;
      status.error = e.what();
      return status;
    }
  }
}

// --- sharded campaign service interface ------------------------------------
//
// A campaign exposed to the crash-resilient service (src/service/): a
// fixed case count, a per-index runner whose serialized record is a PURE
// function of the index -- never of execution order, shard layout, or
// restart count -- and a renderer producing the final report from the
// records in case-index order.  That purity contract is what makes the
// merged report byte-identical for any shard count and any kill/resume
// schedule: a record replayed from a checkpoint is indistinguishable from
// one computed fresh.  Records must round-trip doubles exactly (the
// adapters use hexfloat), so report() sees bit-identical values either
// way.
class ShardableCampaign {
 public:
  virtual ~ShardableCampaign() = default;

  [[nodiscard]] virtual std::size_t case_count() const = 0;
  // Stable human-readable label for logs/events, e.g. "fmea:open-coil".
  [[nodiscard]] virtual std::string case_label(std::size_t index) const = 0;
  // Run case `index` and serialize its row exactly.
  [[nodiscard]] virtual std::string run_case(std::size_t index) const = 0;
  // Record standing in for a case a permanently-failed shard never
  // delivered (graceful degradation: a SimulationError row, not an
  // abort).  `message` must be deterministic.
  [[nodiscard]] virtual std::string error_record(std::size_t index,
                                                 const std::string& message) const = 0;
  // Run the contiguous case span [first, first + count) and serialize the
  // rows in index order.  The default loops run_case; campaigns with a
  // lockstep batched engine override it to advance the whole span at
  // once.  Overrides MUST keep every record a pure function of its global
  // case index: record i of the returned vector is byte-identical to
  // run_case(first + i) no matter how the caller slices the span (the
  // service's checkpoint/resume machinery interleaves chunked and
  // per-case execution freely).
  [[nodiscard]] virtual std::vector<std::string> run_cases(std::size_t first,
                                                           std::size_t count) const {
    std::vector<std::string> records;
    records.reserve(count);
    for (std::size_t i = 0; i < count; ++i) records.push_back(run_case(first + i));
    return records;
  }

  // Preferred batch granularity for run_cases, in cases.  The service's
  // shard loop cuts its drain groups at multiples of this stride in
  // GLOBAL case index (never shard-relative offset), so a chunk straddles
  // shard boundaries identically for every layout.  1 (the default)
  // means per-case execution.
  [[nodiscard]] virtual std::size_t chunk_stride() const { return 1; }

  // Render the final report from case_count() records in index order.
  [[nodiscard]] virtual std::string report(const std::vector<std::string>& records) const = 0;

  // True when `record` carries a degraded SimulationError row (the shape
  // error_record() synthesizes).  The checkpoint merge uses this to let a
  // real record supersede a degraded one for the same case index when
  // both survive in the checkpoint directory (e.g. a shard that recorded
  // the failure before a resumed layout computed the case for real).
  [[nodiscard]] virtual bool is_error_record(const std::string& record) const {
    (void)record;
    return false;
  }
};

}  // namespace lcosc
