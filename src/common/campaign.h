// Shared per-case bookkeeping for campaign-shaped workloads (FMEA fault
// sweeps, Monte-Carlo tolerance analysis).
//
// A hardened campaign never aborts on a failing case: each case runs
// through run_guarded_case, which converts exceptions into a recorded
// outcome (with the message and the retry count) so the remaining cases
// complete and the report stays index-stable for any worker count.
#pragma once

#include <exception>
#include <string>

#include "common/error.h"

namespace lcosc {

enum class CaseOutcome {
  Ok,               // the case ran to completion (detection may still differ)
  Undetected,       // ran, but the expected detection channel never fired
  SimulationError,  // the simulation threw; `error` holds the message
  Timeout,          // the per-case step/wall budget was exceeded
};

[[nodiscard]] std::string to_string(CaseOutcome outcome);

struct CampaignCase {
  CaseOutcome outcome = CaseOutcome::Ok;
  std::string error;  // exception message for SimulationError / Timeout
  int retries = 0;    // re-runs performed before reaching this outcome

  // The simulation produced a result row (possibly an undetected one).
  [[nodiscard]] bool completed() const {
    return outcome == CaseOutcome::Ok || outcome == CaseOutcome::Undetected;
  }
  friend bool operator==(const CampaignCase&, const CampaignCase&) = default;
};

// Run `attempt(k)` with graceful degradation.  k is the attempt index:
// 0 is the nominal run; on ConvergenceError the case is re-run with
// k+1 (the caller tightens its solver options per k) up to `max_retries`
// times.  BudgetExceededError maps to Timeout (no retry: budgets are
// deterministic).  Any other exception fails the case immediately.  The
// returned status is Ok on success; fault campaigns may downgrade it to
// Undetected after inspecting the result.
template <typename Fn>
[[nodiscard]] CampaignCase run_guarded_case(Fn&& attempt, int max_retries = 1) {
  CampaignCase status;
  for (int k = 0;; ++k) {
    status.retries = k;
    try {
      attempt(k);
      return status;
    } catch (const BudgetExceededError& e) {
      status.outcome = CaseOutcome::Timeout;
      status.error = e.what();
      return status;
    } catch (const ConvergenceError& e) {
      if (k >= max_retries) {
        status.outcome = CaseOutcome::SimulationError;
        status.error = e.what();
        return status;
      }
      // Retry with tightened options.
    } catch (const std::exception& e) {
      status.outcome = CaseOutcome::SimulationError;
      status.error = e.what();
      return status;
    }
  }
}

}  // namespace lcosc
