// Crash-safe artifact writes: write the whole contents to a sibling
// temporary file, fsync it, and rename() it into place.  A process killed
// at any instant leaves either the previous file or the complete new one
// -- never a truncated JSON/report that a downstream consumer (the bench
// drift checker, the campaign service merge step) would misparse.
#pragma once

#include <string>
#include <string_view>

namespace lcosc {

// Atomically replace `path` with `contents`.  Parent directories are
// created.  Returns false (leaving any previous file untouched) when the
// temporary file cannot be written or renamed.
bool write_file_atomic(const std::string& path, std::string_view contents);

}  // namespace lcosc
