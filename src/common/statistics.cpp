#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lcosc {

double quantile(std::vector<double> samples, double q) {
  LCOSC_REQUIRE(!samples.empty(), "quantile of an empty sample");
  LCOSC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double position = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(position);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

SummaryStatistics summarize(std::vector<double> samples) {
  LCOSC_REQUIRE(!samples.empty(), "summary of an empty sample");
  SummaryStatistics s;
  s.count = samples.size();

  double acc = 0.0;
  for (const double v : samples) acc += v;
  s.mean = acc / static_cast<double>(s.count);

  double var = 0.0;
  for (const double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(var / static_cast<double>(s.count - 1)) : 0.0;

  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.p05 = quantile(samples, 0.05);
  s.median = quantile(samples, 0.5);
  s.p95 = quantile(samples, 0.95);
  return s;
}

std::vector<std::size_t> histogram(const std::vector<double>& samples, double lo, double hi,
                                   std::size_t bins) {
  LCOSC_REQUIRE(bins >= 1, "histogram needs at least one bin");
  LCOSC_REQUIRE(hi > lo, "histogram range must be ordered");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double v : samples) {
    const double offset = (v - lo) / width;
    std::size_t bin = 0;
    if (offset >= 0.0) {
      bin = std::min(static_cast<std::size_t>(offset), bins - 1);
    }
    ++counts[bin];
  }
  return counts;
}

}  // namespace lcosc
