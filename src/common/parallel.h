// Shared parallel-execution substrate for campaign-shaped workloads
// (Monte-Carlo tolerance analysis, FMEA fault sweeps, AC/parameter
// sweeps, and the evaluation benches).
//
// Contract:
//  - `parallel_map(n, fn)` evaluates fn(0) .. fn(n-1), placing each result
//    at its index, so the output is identical regardless of worker count.
//    Every index is attempted even when another index throws; the
//    exception from the lowest failing index is rethrown in the caller
//    once all workers have drained.  `fn` must not share mutable state
//    across indices -- stochastic work derives a per-index stream via
//    `Rng::fork(stream_id)` from a generator created before the call.
//  - Worker count resolution: an explicit `workers` argument > 0 wins
//    (uncapped -- tests and benches may deliberately oversubscribe), else
//    the LCOSC_THREADS environment variable clamped to a sane
//    oversubscription ceiling relative to the hardware thread count, else
//    std::thread::hardware_concurrency().  `LCOSC_THREADS=1` (or
//    workers == 1) forces fully-inline deterministic execution: no thread
//    is ever spawned and no pool is created.
//  - Nested calls from inside a pool worker run inline, so library code
//    may call parallel_map freely without risking pool starvation.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include <condition_variable>
#include <deque>
#include <mutex>

namespace lcosc {

// Ceiling on how far the LCOSC_THREADS override may oversubscribe the
// hardware: a stale `LCOSC_THREADS=64` from a big build box must not
// spawn 64 workers on a 1-core container (each worker owns a thread for
// the process lifetime, and campaign throughput collapses under the
// context-switch load).  Modest oversubscription stays allowed because
// the verify/bench scripts use it to exercise the pool on small hosts.
inline constexpr std::size_t kMaxWorkerOversubscription = 4;

// Worker count used when a caller passes workers == 0: LCOSC_THREADS if
// set to a positive integer (clamped, see kMaxWorkerOversubscription),
// else hardware_concurrency (min 1).  The first resolution is cached for
// the process lifetime.
[[nodiscard]] std::size_t default_worker_count();

// Pure resolution rule behind default_worker_count(), exposed for tests
// (the cached static above makes the env-dependent path untestable in
// process).  `env_override` is the parsed LCOSC_THREADS value (0 = unset
// or invalid); `hardware` is std::thread::hardware_concurrency() (0 =
// unknown, treated as 1).
[[nodiscard]] std::size_t resolve_worker_count(std::size_t env_override, unsigned hardware);

// Fixed-size worker pool with a FIFO task queue.  Campaign code should
// prefer parallel_map / parallel_for; the pool is exposed for callers
// that need to schedule heterogeneous background work.
class ThreadPool {
 public:
  // Spawns exactly `workers` threads (0 is allowed: tasks then only run
  // when drained by another mechanism; the shared pool never does this).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  // Enqueue a task.  Tasks must not throw: exceptions cannot be routed
  // back to a caller from here, so they are swallowed (parallel_for
  // routes per-index exceptions itself before they reach the pool).
  void submit(std::function<void()> task);

  // Process-wide pool, lazily created with default_worker_count() - 1
  // threads (the caller of parallel_for is the remaining worker).  Never
  // constructed while the default worker count is 1.
  static ThreadPool& shared();

  // True when the calling thread is one of a ThreadPool's workers.
  [[nodiscard]] static bool on_worker_thread();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

// Run fn(0) .. fn(n-1) on up to `workers` threads (see file header for
// the count resolution and exception contract).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t workers = 0);

// Order-preserving map: returns {fn(0), ..., fn(n-1)}.  The result type
// must be default-constructible (results are written into a pre-sized
// vector so completion order never matters).
template <typename Fn>
[[nodiscard]] auto parallel_map(std::size_t n, Fn&& fn, std::size_t workers = 0)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<R>,
                "parallel_map results are placed by index into a pre-sized "
                "vector and must be default-constructible");
  std::vector<R> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, workers);
  return out;
}

}  // namespace lcosc
