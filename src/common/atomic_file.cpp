#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>

namespace lcosc {

bool write_file_atomic(const std::string& path, std::string_view contents) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
  }

  // Same-directory temp name so the final rename() never crosses a
  // filesystem boundary; the pid suffix keeps concurrent writers (e.g.
  // campaign shards refreshing their own artifacts) from colliding.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;

  const char* data = contents.data();
  std::size_t remaining = contents.size();
  bool ok = true;
  while (ok && remaining > 0) {
    const ::ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  // The data must be durable before the rename makes it visible, or a
  // power cut could expose a complete-looking but empty file.
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;

  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) ::unlink(tmp.c_str());
  return ok;
}

}  // namespace lcosc
