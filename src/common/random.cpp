#include "common/random.h"

#include <cmath>

namespace lcosc {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : state_) s = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  // Drop any cached Marsaglia polar deviate: a stale second normal leaking
  // across reseed() would make the post-reseed stream depend on history,
  // breaking the per-case determinism the Monte-Carlo engines rely on.
  has_cached_normal_ = false;
  cached_normal_ = 0.0;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) { return mean + sigma * normal(); }

int Rng::uniform_int(int lo, int hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>((*this)() % span);
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the parent state with the stream id through splitmix64 so sibling
  // streams are decorrelated.
  std::uint64_t x = state_[0] ^ rotl(state_[3], 13) ^ (stream_id * 0xD6E8FEB86659FD93ULL);
  Rng child(splitmix64(x));
  return child;
}

}  // namespace lcosc
