#include "common/error.h"

#include <sstream>

namespace lcosc::detail {

void throw_requirement_failure(const char* condition, const char* file, int line,
                               const std::string& message) {
  std::ostringstream os;
  os << "requirement violated: " << message << " [" << condition << "] at " << file << ":" << line;
  throw ConfigError(os.str());
}

}  // namespace lcosc::detail
