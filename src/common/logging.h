// Minimal leveled logging used by solvers to report convergence trouble.
//
// Logging is off by default (level Warn) so library output stays clean;
// benches and examples may raise the level for diagnostics, and the
// LCOSC_LOG_LEVEL environment variable (debug/info/warn/error/off) is
// honoured at first use.  Sink emission is serialized under a mutex, so
// concurrent LCOSC_LOG_* lines from parallel campaign workers never
// interleave mid-line.  When the structured event log (obs/event_log.h)
// has a sink installed, passing messages are emitted there as typed
// "log" events instead of free text on stderr.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace lcosc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

// Parse a level name ("debug", "info", "warn"/"warning", "error", "off";
// case-insensitive); nullopt for anything else.  Exposed for tests of
// the LCOSC_LOG_LEVEL handling.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

// Emit one line to stderr with a level tag if `level` passes the
// threshold -- or, when the structured event log is on, a JSONL "log"
// event carrying the level and message.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

#define LCOSC_LOG_DEBUG ::lcosc::detail::LogLine(::lcosc::LogLevel::Debug)
#define LCOSC_LOG_INFO ::lcosc::detail::LogLine(::lcosc::LogLevel::Info)
#define LCOSC_LOG_WARN ::lcosc::detail::LogLine(::lcosc::LogLevel::Warn)
#define LCOSC_LOG_ERROR ::lcosc::detail::LogLine(::lcosc::LogLevel::Error)

}  // namespace lcosc
