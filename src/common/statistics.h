// Descriptive statistics for Monte-Carlo campaigns (mismatch, tolerance).
#pragma once

#include <vector>

namespace lcosc {

struct SummaryStatistics {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double p05 = 0.0;  // 5th percentile
  double median = 0.0;
  double p95 = 0.0;  // 95th percentile
};

// Compute summary statistics; throws ConfigError on an empty sample.
[[nodiscard]] SummaryStatistics summarize(std::vector<double> samples);

// Linear-interpolated quantile of a sample, q in [0, 1].
[[nodiscard]] double quantile(std::vector<double> samples, double q);

// Fixed-width histogram over [lo, hi] with `bins` bins; values outside the
// range clamp into the edge bins.
[[nodiscard]] std::vector<std::size_t> histogram(const std::vector<double>& samples, double lo,
                                                 double hi, std::size_t bins);

}  // namespace lcosc
