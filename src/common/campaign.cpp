#include "common/campaign.h"

namespace lcosc {

std::string to_string(CaseOutcome outcome) {
  switch (outcome) {
    case CaseOutcome::Ok:
      return "ok";
    case CaseOutcome::Undetected:
      return "undetected";
    case CaseOutcome::SimulationError:
      return "simulation-error";
    case CaseOutcome::Timeout:
      return "timeout";
  }
  return "?";
}

}  // namespace lcosc
