#include "common/campaign.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "obs/metrics.h"

namespace lcosc {

int retry_backoff_delay_ms(const RetryBackoff& backoff, int attempt) {
  if (!backoff.enabled() || attempt < 1) return 0;
  double delay = backoff.initial_ms;
  for (int k = 1; k < attempt; ++k) {
    delay *= backoff.multiplier;
    if (delay >= backoff.max_ms) break;  // saturated; stop before overflow
  }
  return static_cast<int>(std::min<double>(delay, backoff.max_ms));
}

namespace detail {

void note_case_retry(const RetryBackoff& backoff, int attempt) {
  if (obs::metrics_enabled()) {
    static obs::Counter& retries =
        obs::MetricsRegistry::instance().counter("campaign.case.retries");
    retries.add(1);
  }
  const int delay_ms = retry_backoff_delay_ms(backoff, attempt);
  if (delay_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

void note_case_timeout() {
  if (obs::metrics_enabled()) {
    static obs::Counter& timeouts =
        obs::MetricsRegistry::instance().counter("campaign.case.timeouts");
    timeouts.add(1);
  }
}

}  // namespace detail

std::string to_string(CaseOutcome outcome) {
  switch (outcome) {
    case CaseOutcome::Ok:
      return "ok";
    case CaseOutcome::Undetected:
      return "undetected";
    case CaseOutcome::SimulationError:
      return "simulation-error";
    case CaseOutcome::Timeout:
      return "timeout";
  }
  return "?";
}

}  // namespace lcosc
