// Engineering-notation formatting of SI quantities ("12.5 uA", "4.7 nF").
#pragma once

#include <string>

namespace lcosc {

// Format `value` with an engineering prefix and the given unit symbol,
// e.g. si_format(1.25e-5, "A") -> "12.5 uA".  `digits` is the number of
// significant digits.  Zero, NaN and infinity are handled gracefully.
[[nodiscard]] std::string si_format(double value, const std::string& unit, int digits = 4);

// Format a plain double with `digits` significant digits (no prefix).
[[nodiscard]] std::string format_significant(double value, int digits = 4);

// Format a ratio as a percentage string, e.g. 0.0625 -> "6.25%".
[[nodiscard]] std::string percent_format(double ratio, int digits = 3);

}  // namespace lcosc
