// Physical constants and chip-level parameters shared by the models.
#pragma once

#include <numbers>

namespace lcosc {

constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Boltzmann constant [J/K] and electron charge [C] for diode models.
constexpr double kBoltzmann = 1.380649e-23;
constexpr double kElectronCharge = 1.602176634e-19;

// Thermal voltage kT/q at 300 K [V]; used as the default diode slope.
constexpr double kThermalVoltage300K = kBoltzmann * 300.0 / kElectronCharge;

// --- Paper-level constants (DATE'05, Horsky) ------------------------------

// The amplitude law V = k * Im * Rp uses an effective factor that depends on
// the driver's V-I characteristic.  For the linear-then-limited
// approximation of Fig. 2 the paper quotes k ~ 0.9.
constexpr double kDriverShapeFactorLinear = 0.9;

// A hard-limited (square wave) current drive delivers its fundamental at
// 4/pi times the limit amplitude.
constexpr double kDriverShapeFactorSquare = 4.0 / kPi;

// DAC geometry (Table 1 / Fig. 3).
constexpr int kDacCodeBits = 7;
constexpr int kDacCodeCount = 1 << kDacCodeBits;          // 128 codes
constexpr int kDacCodeMax = kDacCodeCount - 1;            // code 127
constexpr int kDacSegmentCount = 8;
constexpr int kDacCodesPerSegment = 16;
constexpr int kDacFullScaleUnits = 1984;                  // M(127)
// Equivalent linear DAC resolution quoted by the paper (0..1984 < 2^11).
constexpr int kDacEquivalentLinearBits = 11;

// Measured unit current: "1 LSB is 12.5 uA" (Fig. 13).
constexpr double kDacUnitCurrent = 12.5e-6;

// Regulation loop (paragraph 4).
constexpr double kRegulationTickPeriod = 1.0e-3;          // one step per 1 ms
constexpr int kStartupCode = 105;                         // POR preset
// Worst-case relative DAC step above code 16 (Fig. 4); the regulation
// window must be wider than this.
constexpr double kMaxRelativeStepAbove16 = 0.0625;
constexpr double kMinRelativeStepAbove16 = 0.0323;

// Operating envelope quoted in paragraphs 5 and 9.
constexpr double kMinOscFrequency = 2.0e6;
constexpr double kMaxOscFrequency = 5.0e6;
constexpr double kMaxEquivalentTransconductance = 10.0e-3;  // ~10 mS
constexpr double kMaxOperatingAmplitudePeakToPeak = 2.7;    // 2.7 Vpp

}  // namespace lcosc
