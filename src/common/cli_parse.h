// Strict command-line number parsing.  atoi/atof and bare strtoull turn
// a typo ("--samples 4B") into a silent 0, and std::stod/std::stoi throw
// std::invalid_argument straight through main (std::terminate on an
// uncaught path) -- either way a mistyped flag becomes a wrong run or a
// crash instead of a usage error.  These helpers accept a value only when
// the WHOLE string parses (endptr at the terminator, errno clear, value
// in range, doubles finite) and throw lcosc::ConfigError naming the flag
// otherwise, so every CLI rejects garbage with a readable message.
#pragma once

#include <cstdint>
#include <string>

namespace lcosc {

// `what` names the value in error messages, e.g. "--samples" or "t_stop".
[[nodiscard]] int parse_cli_int(const std::string& what, const std::string& text);
[[nodiscard]] long long parse_cli_ll(const std::string& what, const std::string& text);
[[nodiscard]] std::uint64_t parse_cli_u64(const std::string& what, const std::string& text);
// Finite doubles only (rejects "nan"/"inf": no CLI knob here wants them).
[[nodiscard]] double parse_cli_double(const std::string& what, const std::string& text);

}  // namespace lcosc
