#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace lcosc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (message.empty()) return;
  // Compose the full line first and emit it under a mutex so lines from
  // parallel campaign workers never interleave mid-line.
  const std::string line = "[lcosc:" + std::string(level_tag(level)) + "] " + message + "\n";
  static std::mutex sink_mutex;
  const std::lock_guard<std::mutex> lock(sink_mutex);
  std::cerr << line;
}

}  // namespace lcosc
