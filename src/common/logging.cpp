#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "obs/event_log.h"

namespace lcosc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "?";
}

// Apply LCOSC_LOG_LEVEL once, at the first threshold query, so an env
// override works without any programmatic setup (an explicit
// set_log_level call afterwards still wins).
bool apply_env_level() {
  const char* env = std::getenv("LCOSC_LOG_LEVEL");
  if (env != nullptr) {
    if (const std::optional<LogLevel> parsed = parse_log_level(env)) {
      g_level.store(*parsed, std::memory_order_relaxed);
    }
  }
  return true;
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string v(name);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "debug") return LogLevel::Debug;
  if (v == "info") return LogLevel::Info;
  if (v == "warn" || v == "warning") return LogLevel::Warn;
  if (v == "error") return LogLevel::Error;
  if (v == "off" || v == "none") return LogLevel::Off;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  log_level();  // ensure the env default is applied first, then override
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  static const bool env_applied = apply_env_level();
  (void)env_applied;
  return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (message.empty()) return;
  // Structured mode: route the line into the JSONL event log as a typed
  // event (machine-readable campaign runs) instead of free-text stderr.
  if (obs::events_enabled()) {
    obs::Event("log").str("level", level_tag(level)).str("message", message);
    return;
  }
  // Compose the full line first and emit it under a mutex so lines from
  // parallel campaign workers never interleave mid-line.
  const std::string line = "[lcosc:" + std::string(level_tag(level)) + "] " + message + "\n";
  static std::mutex sink_mutex;
  const std::lock_guard<std::mutex> lock(sink_mutex);
  std::cerr << line;
}

}  // namespace lcosc
