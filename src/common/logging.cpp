#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace lcosc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (message.empty()) return;
  std::cerr << "[lcosc:" << level_tag(level) << "] " << message << '\n';
}

}  // namespace lcosc
