#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/metrics.h"

namespace lcosc {
namespace {

// Pool telemetry (DESIGN.md §10).  Gauges, not counters: instantaneous
// pool state depends on the worker count and scheduling, so it is
// deliberately outside the cross-worker determinism contract that the
// campaign counters/histograms satisfy.
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::instance().gauge("pool.queue_depth");
  return g;
}

obs::Gauge& busy_workers_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::instance().gauge("pool.busy_workers");
  return g;
}

thread_local bool t_on_pool_worker = false;

std::size_t env_worker_override() {
  const char* env = std::getenv("LCOSC_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v < 1) return 0;
  return static_cast<std::size_t>(v);
}

// Shared state of one parallel_for call.  Kept alive by shared_ptr so a
// helper task that starts after the caller has already finished the
// batch (it will find no index left) never touches a dead frame.
struct Batch {
  Batch(std::size_t count, const std::function<void(std::size_t)>& body)
      : n(count), fn(body), errors(count) {}

  const std::size_t n;
  const std::function<void(std::size_t)> fn;
  std::vector<std::exception_ptr> errors;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex mutex;
  std::condition_variable done_cv;

  // Claim indices until the batch is exhausted.  Runs on the caller's
  // thread and on any pool helpers; dynamic claiming balances uneven
  // per-index cost without affecting where results land.
  void run() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        const std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

std::size_t resolve_worker_count(std::size_t env_override, unsigned hardware) {
  const std::size_t hw = hardware > 0 ? static_cast<std::size_t>(hardware) : std::size_t{1};
  if (env_override > 0) return std::min(env_override, hw * kMaxWorkerOversubscription);
  return hw;
}

std::size_t default_worker_count() {
  static const std::size_t count =
      resolve_worker_count(env_worker_override(), std::thread::hardware_concurrency());
  return count;
}

ThreadPool::ThreadPool(std::size_t workers) {
  obs::MetricsRegistry::instance().gauge("pool.workers").set(static_cast<double>(workers));
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    busy_workers_gauge().add(1.0);
    try {
      task();
    } catch (...) {
      // Contract: submitted tasks must not throw (parallel_for catches
      // per-index exceptions before they reach the pool).
    }
    busy_workers_gauge().add(-1.0);
  }
}

bool ThreadPool::on_worker_thread() { return t_on_pool_worker; }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max<std::size_t>(std::size_t{1}, default_worker_count() - 1));
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t workers) {
  if (n == 0) return;
  std::size_t k = workers > 0 ? workers : default_worker_count();
  k = std::min(k, n);

  if (k <= 1 || ThreadPool::on_worker_thread()) {
    // Inline path: single-worker mode, and nested calls from inside a
    // pool worker (blocking on the shared pool there could starve it).
    // Mirrors the parallel exception contract: every index is attempted,
    // the lowest failing index's exception is rethrown.
    std::exception_ptr first;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  auto batch = std::make_shared<Batch>(n, fn);
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t helpers = std::min(k - 1, pool.worker_count());
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([batch] { batch->run(); });
  }
  batch->run();
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done_cv.wait(lock, [&] {
      return batch->completed.load(std::memory_order_acquire) == batch->n;
    });
  }
  for (const std::exception_ptr& e : batch->errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace lcosc
