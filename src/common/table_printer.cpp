#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace lcosc {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LCOSC_REQUIRE(!headers_.empty(), "table must have at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  LCOSC_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << row[c] << " |";
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      // Quote cells that contain separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (const char ch : row[c]) {
          if (ch == '"') os << "\"\"";
          else os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace detail {

std::string cell_to_string(const std::string& v) { return v; }
std::string cell_to_string(const char* v) { return v; }

std::string cell_to_string(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

std::string cell_to_string(int v) { return std::to_string(v); }
std::string cell_to_string(long v) { return std::to_string(v); }
std::string cell_to_string(unsigned v) { return std::to_string(v); }
std::string cell_to_string(std::size_t v) { return std::to_string(v); }
std::string cell_to_string(bool v) { return v ? "yes" : "no"; }

}  // namespace detail
}  // namespace lcosc
