// Deterministic random number generation for Monte-Carlo mismatch studies.
//
// All stochastic behaviour in the library flows through `Rng` so that every
// "measured" figure is reproducible from a seed recorded in the experiment
// scripts.  The engine is a small, fast xoshiro256** implementation; we do
// not use std::mt19937 for the core engine because its state is bulky to
// fork per-branch, but we do reuse the standard distributions' algorithms.
#pragma once

#include <cstdint>

namespace lcosc {

// xoshiro256** by Blackman & Vigna (public domain reference implementation),
// wrapped with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Raw 64-bit output (UniformRandomBitGenerator interface).
  std::uint64_t operator()();
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Standard normal via Marsaglia polar method (cached second deviate).
  double normal();
  // Normal with the given mean and standard deviation.
  double normal(double mean, double sigma);
  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  // Derive an independent child stream; used to give every mirror branch
  // its own stream so adding a branch does not shift others' deviates.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t state_[4]{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace lcosc
