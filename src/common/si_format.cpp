#include "common/si_format.h"

#include <array>
#include <cmath>
#include <sstream>

namespace lcosc {
namespace {

struct Prefix {
  double scale;
  const char* symbol;
};

constexpr std::array<Prefix, 11> kPrefixes = {{
    {1e12, "T"},
    {1e9, "G"},
    {1e6, "M"},
    {1e3, "k"},
    {1e0, ""},
    {1e-3, "m"},
    {1e-6, "u"},
    {1e-9, "n"},
    {1e-12, "p"},
    {1e-15, "f"},
    {1e-18, "a"},
}};

}  // namespace

std::string format_significant(double value, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << value;
  return os.str();
}

std::string si_format(double value, const std::string& unit, int digits) {
  if (std::isnan(value)) return "nan " + unit;
  if (std::isinf(value)) return (value > 0 ? "inf " : "-inf ") + unit;
  if (value == 0.0) return "0 " + unit;

  const double magnitude = std::abs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const auto& prefix : kPrefixes) {
    if (magnitude >= prefix.scale) {
      chosen = &prefix;
      break;
    }
  }
  std::ostringstream os;
  os.precision(digits);
  os << (value / chosen->scale) << ' ' << chosen->symbol << unit;
  return os.str();
}

std::string percent_format(double ratio, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << (ratio * 100.0) << '%';
  return os.str();
}

}  // namespace lcosc
