// Fixed-width ASCII table printer used by the benchmark harness to emit the
// paper's tables and figure data series in a readable, diffable form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lcosc {

// Collects rows of string cells and prints them with aligned columns.
//
//   TablePrinter t({"Code", "M(n)", "Step"});
//   t.add_row({"17", "17", "1"});
//   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Append one row; must have the same number of cells as there are headers.
  void add_row(std::vector<std::string> cells);

  // Convenience: convert arithmetic values with operator<<.
  template <typename... Ts>
  void add_values(const Ts&... values);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;

  // Render the table as CSV (headers + rows), for machine consumption.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

namespace detail {
std::string cell_to_string(const std::string& v);
std::string cell_to_string(const char* v);
std::string cell_to_string(double v);
std::string cell_to_string(int v);
std::string cell_to_string(long v);
std::string cell_to_string(unsigned v);
std::string cell_to_string(std::size_t v);
std::string cell_to_string(bool v);
}  // namespace detail

template <typename... Ts>
void TablePrinter::add_values(const Ts&... values) {
  add_row({detail::cell_to_string(values)...});
}

}  // namespace lcosc
