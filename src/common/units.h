// SI unit helpers and physical constants used throughout the library.
//
// All quantities in the library are plain `double` in base SI units
// (volts, amperes, ohms, henries, farads, seconds, hertz).  These
// user-defined literals make component values in configuration code read
// like a schematic annotation:
//
//   TankConfig tank{.inductance = 470.0_uH, .capacitance = 2.2_nF};
#pragma once

namespace lcosc {

// --- scale prefixes -------------------------------------------------------

constexpr double kTera = 1e12;
constexpr double kGiga = 1e9;
constexpr double kMega = 1e6;
constexpr double kKilo = 1e3;
constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;
constexpr double kPico = 1e-12;
constexpr double kFemto = 1e-15;

namespace literals {

// Voltage / generic value literals.
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_V(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_mV(unsigned long long v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_uV(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_uV(unsigned long long v) { return static_cast<double>(v) * kMicro; }

// Current.
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_A(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mA(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_mA(unsigned long long v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_uA(unsigned long long v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_nA(long double v) { return static_cast<double>(v) * kNano; }
constexpr double operator""_nA(unsigned long long v) { return static_cast<double>(v) * kNano; }

// Resistance.
constexpr double operator""_Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_Ohm(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * kKilo; }
constexpr double operator""_kOhm(unsigned long long v) { return static_cast<double>(v) * kKilo; }
constexpr double operator""_MOhm(long double v) { return static_cast<double>(v) * kMega; }
constexpr double operator""_MOhm(unsigned long long v) { return static_cast<double>(v) * kMega; }

// Inductance.
constexpr double operator""_H(long double v) { return static_cast<double>(v); }
constexpr double operator""_H(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mH(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_mH(unsigned long long v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_uH(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_uH(unsigned long long v) { return static_cast<double>(v) * kMicro; }

// Capacitance.
constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_F(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_uF(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_uF(unsigned long long v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_nF(long double v) { return static_cast<double>(v) * kNano; }
constexpr double operator""_nF(unsigned long long v) { return static_cast<double>(v) * kNano; }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * kPico; }
constexpr double operator""_pF(unsigned long long v) { return static_cast<double>(v) * kPico; }

// Time.
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_s(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_ms(unsigned long long v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_us(unsigned long long v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * kNano; }
constexpr double operator""_ns(unsigned long long v) { return static_cast<double>(v) * kNano; }

// Frequency.
constexpr double operator""_Hz(long double v) { return static_cast<double>(v); }
constexpr double operator""_Hz(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_kHz(long double v) { return static_cast<double>(v) * kKilo; }
constexpr double operator""_kHz(unsigned long long v) { return static_cast<double>(v) * kKilo; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * kMega; }
constexpr double operator""_MHz(unsigned long long v) { return static_cast<double>(v) * kMega; }

// Conductance.
constexpr double operator""_S(long double v) { return static_cast<double>(v); }
constexpr double operator""_S(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mS(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_mS(unsigned long long v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_uS(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_uS(unsigned long long v) { return static_cast<double>(v) * kMicro; }

}  // namespace literals
}  // namespace lcosc
