#include "faults/fault_bus.h"

namespace lcosc::faults {

void FaultBus::clear() {
  ++revision_;
  fault_ = InternalFault{};
  active_ = false;
  for (BusMask& m : masks_) m = BusMask{};
  dead_segment_ = -1;
  gm_scale_ = 1.0;
  window_override_ = WindowOverride::None;
}

void FaultBus::inject(const InternalFault& fault) {
  clear();
  if (fault.kind == InternalFaultKind::None) return;
  fault_ = fault;
  active_ = true;
  switch (fault.kind) {
    case InternalFaultKind::DacLineStuck: {
      BusMask& m = masks_[static_cast<std::size_t>(fault.bus)];
      const auto line = static_cast<std::uint8_t>(1u << fault.bit);
      if (fault.stuck_high) {
        m.set = line;
      } else {
        m.keep = static_cast<std::uint8_t>(~line);
      }
      break;
    }
    case InternalFaultKind::DacSegmentDead:
      dead_segment_ = fault.segment;
      break;
    case InternalFaultKind::GmCollapse:
      gm_scale_ = fault.gm_factor;
      break;
    case InternalFaultKind::WindowStuckHigh:
      window_override_ = WindowOverride::ForceAbove;
      break;
    case InternalFaultKind::WindowStuckLow:
      window_override_ = WindowOverride::ForceBelow;
      break;
    default:
      break;  // flag-style kinds are answered directly from fault_.kind
  }
}

}  // namespace lcosc::faults
