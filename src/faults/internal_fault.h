// Internal (on-chip) single-point fault taxonomy, complementing the
// external tank faults of paper Section 7 (src/tank/tank_faults.h).  The
// paper's safety argument is that the window-comparator regulation loop,
// the three detectors and the watchdog catch single-point failures inside
// the chip as well as outside; this taxonomy enumerates the failures of
// the digital/analog blocks we model so the FMEA campaign can exercise
// them and report honest coverage, including the uncovered gaps.
#pragma once

#include <string>
#include <vector>

namespace lcosc::faults {

// The three hardware control buses of the current limitation DAC
// (Table 1): OscD<2:0> prescaler, OscE<3:0> Gm switching, OscF<6:0>
// binary-weighted mirror.
enum class DacBus { OscD, OscE, OscF };

enum class InternalFaultKind {
  None,
  // One line of a DAC control bus stuck at 0 or 1 (metal short / open
  // gate).  The regulation loop usually re-converges on a different code
  // (masked) or drives the amplitude out of the window high-side.
  DacLineStuck,
  // The binary mirror bank of one PWL segment is dead: OscF contributes
  // nothing while the code is inside that segment, flattening the
  // transfer until the loop escapes to the next segment.
  DacSegmentDead,
  // Window comparator output stuck at the "amplitude above window" level:
  // the FSM decrements to the minimum code and the oscillation collapses.
  WindowStuckHigh,
  // Stuck at the "amplitude below window" level: the FSM increments to
  // the maximum code and overdrives the tank.
  WindowStuckLow,
  // The full-wave rectifier of the amplitude detection chain is dead:
  // VDC1 decays to zero, which the comparator reads as "below window".
  RectifierDead,
  // The regulation FSM is frozen: its code output latches the value held
  // at injection time (clock loss / latched scan chain).  The safe-state
  // mode latch still operates but cannot move the code either.
  FsmFrozen,
  // The missing-oscillation watchdog never times out: loss of the
  // primary supervision channel (latent until a second fault).
  WatchdogDead,
  // Transconductance collapse of the Gm output stages (bias loss): with
  // the default severity the oscillation condition gm*Rp > 1 fails and
  // the oscillation dies.
  GmCollapse,
  // Harness self-tests (not part of the standard campaign list): used to
  // prove the campaign runner degrades gracefully.  SelfTestThrow makes
  // the simulation throw ConvergenceError at the injection instant;
  // SelfTestStall freezes simulated time so the per-case step budget
  // trips deterministically.
  SelfTestThrow,
  SelfTestStall,
};

// Primary detection channel expected for an internal fault.  `None` means
// the fault is masked by the regulation loop or latent: the campaign
// reports it as an uncovered gap (see gap_note) instead of a detection.
enum class DetectionChannel {
  None,
  MissingOscillation,
  LowAmplitude,
  Asymmetry,
  FrequencyOutOfBand,
};

struct InternalFault {
  InternalFaultKind kind = InternalFaultKind::None;
  // DacLineStuck parameters.
  DacBus bus = DacBus::OscF;
  int bit = 0;
  bool stuck_high = false;
  // DacSegmentDead parameter.
  int segment = 0;
  // GmCollapse severity: remaining fraction of the healthy gm.
  double gm_factor = 0.05;

  friend bool operator==(const InternalFault&, const InternalFault&) = default;
};

// Factories for the common cases.
[[nodiscard]] InternalFault make_line_stuck(DacBus bus, int bit, bool stuck_high);
[[nodiscard]] InternalFault make_segment_dead(int segment);
[[nodiscard]] InternalFault make_gm_collapse(double gm_factor = 0.05);
[[nodiscard]] InternalFault make_fault(InternalFaultKind kind);

// Expected primary detection channel (the paper's Section 7/9 reasoning
// applied to the on-chip blocks; the campaign measures the truth).
[[nodiscard]] DetectionChannel expected_detection(const InternalFault& fault);

// For faults with expected_detection == None: why no modeled channel
// observes them.  Empty for faults with an expected channel.
[[nodiscard]] std::string gap_note(const InternalFault& fault);

// Stable machine-readable label, e.g. "oscf<3>-stuck-1", "segment4-dead",
// "window-comparator-stuck-high".
[[nodiscard]] std::string to_string(const InternalFault& fault);
[[nodiscard]] std::string to_string(InternalFaultKind kind);
[[nodiscard]] std::string to_string(DetectionChannel channel);
[[nodiscard]] std::string to_string(DacBus bus);

// The standard internal campaign list: every bus line stuck 0/1
// (3 + 4 + 7 lines x 2), all eight dead segments, both comparator stuck
// levels, dead rectifier, frozen FSM, dead watchdog and gm collapse.
// Self-test kinds are excluded.
[[nodiscard]] std::vector<InternalFault> internal_fault_list();

}  // namespace lcosc::faults
