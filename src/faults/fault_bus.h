// The fault bus: one small shared object that carries the active internal
// fault of a system to the blocks that must misbehave (DAC, driver,
// amplitude detector, regulation FSM, safety controller).
//
// Threading model: `OscillatorSystem` owns one bus and attaches a const
// pointer to each subsystem before a run.  Healthy-path code pays one
// null/inactive check per hook; all per-fault work (bus masks, scales) is
// precomputed at inject() time.  Blocks without an attached bus behave
// exactly as before the fault framework existed.
#pragma once

#include <cstdint>

#include "faults/internal_fault.h"

namespace lcosc::faults {

enum class WindowOverride { None, ForceBelow, ForceAbove };

class FaultBus {
 public:
  // Activate `fault` (precomputes the hook state below).  Injecting
  // InternalFaultKind::None is equivalent to clear().
  void inject(const InternalFault& fault);
  void clear();

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const InternalFault& fault() const { return fault_; }

  // Monotonic change counter, bumped by every inject()/clear().  Blocks
  // that cache fault-dependent derived state (e.g. the driver's effective
  // Gm-stage parameters) compare this against the revision they cached at
  // instead of re-reading the bus on every evaluation.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  // --- hooks (identity / false when inactive) -----------------------------

  // Stuck-line transform of a DAC control bus value.
  [[nodiscard]] std::uint8_t apply_stuck(DacBus bus, std::uint8_t value) const {
    const BusMask& m = masks_[static_cast<std::size_t>(bus)];
    return static_cast<std::uint8_t>((value & m.keep) | m.set);
  }

  // True when the binary mirror bank of `segment` is dead.
  [[nodiscard]] bool segment_dead(int segment) const {
    return dead_segment_ == segment;
  }

  // Remaining fraction of the healthy transconductance (1.0 healthy).
  [[nodiscard]] double gm_scale() const { return gm_scale_; }

  // Forced window-comparator verdict seen by the regulation FSM.
  [[nodiscard]] WindowOverride window_override() const { return window_override_; }

  [[nodiscard]] bool rectifier_dead() const {
    return active_ && fault_.kind == InternalFaultKind::RectifierDead;
  }
  [[nodiscard]] bool fsm_frozen() const {
    return active_ && fault_.kind == InternalFaultKind::FsmFrozen;
  }
  [[nodiscard]] bool watchdog_dead() const {
    return active_ && fault_.kind == InternalFaultKind::WatchdogDead;
  }
  // Harness self-test: simulated time stops advancing (the step budget of
  // the simulation must terminate the case).
  [[nodiscard]] bool stalled() const {
    return active_ && fault_.kind == InternalFaultKind::SelfTestStall;
  }

 private:
  struct BusMask {
    std::uint8_t set = 0;
    std::uint8_t keep = 0xFF;
  };

  InternalFault fault_{};
  bool active_ = false;
  BusMask masks_[3] = {};
  int dead_segment_ = -1;
  double gm_scale_ = 1.0;
  WindowOverride window_override_ = WindowOverride::None;
  std::uint64_t revision_ = 0;
};

}  // namespace lcosc::faults
