#include "faults/internal_fault.h"

#include "common/error.h"

namespace lcosc::faults {

namespace {

int bus_width(DacBus bus) {
  switch (bus) {
    case DacBus::OscD:
      return 3;
    case DacBus::OscE:
      return 4;
    case DacBus::OscF:
      return 7;
  }
  return 0;
}

}  // namespace

InternalFault make_line_stuck(DacBus bus, int bit, bool stuck_high) {
  LCOSC_REQUIRE(bit >= 0 && bit < bus_width(bus), "stuck line outside the bus width");
  InternalFault f;
  f.kind = InternalFaultKind::DacLineStuck;
  f.bus = bus;
  f.bit = bit;
  f.stuck_high = stuck_high;
  return f;
}

InternalFault make_segment_dead(int segment) {
  LCOSC_REQUIRE(segment >= 0 && segment < 8, "DAC segment out of range 0..7");
  InternalFault f;
  f.kind = InternalFaultKind::DacSegmentDead;
  f.segment = segment;
  return f;
}

InternalFault make_gm_collapse(double gm_factor) {
  LCOSC_REQUIRE(gm_factor >= 0.0 && gm_factor < 1.0, "gm collapse factor must be in [0,1)");
  InternalFault f;
  f.kind = InternalFaultKind::GmCollapse;
  f.gm_factor = gm_factor;
  return f;
}

InternalFault make_fault(InternalFaultKind kind) {
  InternalFault f;
  f.kind = kind;
  return f;
}

DetectionChannel expected_detection(const InternalFault& fault) {
  switch (fault.kind) {
    case InternalFaultKind::WindowStuckHigh:
      // The FSM walks the code to the minimum; the amplitude drops below
      // the low-amplitude threshold long before the oscillation dies.
      return DetectionChannel::LowAmplitude;
    case InternalFaultKind::GmCollapse:
      // Below the oscillation condition the swing decays under the
      // watchdog comparator hysteresis and the clock stops.
      return DetectionChannel::MissingOscillation;
    case InternalFaultKind::None:
    case InternalFaultKind::DacLineStuck:
    case InternalFaultKind::DacSegmentDead:
    case InternalFaultKind::WindowStuckLow:
    case InternalFaultKind::RectifierDead:
    case InternalFaultKind::FsmFrozen:
    case InternalFaultKind::WatchdogDead:
    case InternalFaultKind::SelfTestThrow:
    case InternalFaultKind::SelfTestStall:
      return DetectionChannel::None;
  }
  return DetectionChannel::None;
}

std::string gap_note(const InternalFault& fault) {
  switch (fault.kind) {
    case InternalFaultKind::DacLineStuck:
      return "regulation loop re-converges on another code or drives the amplitude "
             "above the window; no modeled channel observes the DAC buses or the "
             "supply current";
    case InternalFaultKind::DacSegmentDead:
      return "regulation loop escapes the flat segment within a few ticks; "
             "transient dip is shorter than the low-amplitude persistence";
    case InternalFaultKind::WindowStuckLow:
      return "overdrive: code runs to maximum, amplitude clamps at the rails; "
             "only a supply-current monitor (not modeled) would observe it";
    case InternalFaultKind::RectifierDead:
      return "VDC1 collapse reads as 'below window' and overdrives the tank; "
             "same supply-current gap as the stuck-low comparator";
    case InternalFaultKind::FsmFrozen:
      return "latent: the frozen code keeps the settled amplitude inside the "
             "window until conditions drift; needs a periodic code self-test";
    case InternalFaultKind::WatchdogDead:
      return "latent loss of the primary supervision channel; only observable "
             "together with a second fault or via a watchdog self-test";
    case InternalFaultKind::None:
    case InternalFaultKind::WindowStuckHigh:
    case InternalFaultKind::GmCollapse:
    case InternalFaultKind::SelfTestThrow:
    case InternalFaultKind::SelfTestStall:
      return {};
  }
  return {};
}

std::string to_string(DacBus bus) {
  switch (bus) {
    case DacBus::OscD:
      return "oscd";
    case DacBus::OscE:
      return "osce";
    case DacBus::OscF:
      return "oscf";
  }
  return "?";
}

std::string to_string(InternalFaultKind kind) {
  switch (kind) {
    case InternalFaultKind::None:
      return "none";
    case InternalFaultKind::DacLineStuck:
      return "dac-line-stuck";
    case InternalFaultKind::DacSegmentDead:
      return "dac-segment-dead";
    case InternalFaultKind::WindowStuckHigh:
      return "window-comparator-stuck-high";
    case InternalFaultKind::WindowStuckLow:
      return "window-comparator-stuck-low";
    case InternalFaultKind::RectifierDead:
      return "rectifier-dead";
    case InternalFaultKind::FsmFrozen:
      return "fsm-frozen";
    case InternalFaultKind::WatchdogDead:
      return "watchdog-dead";
    case InternalFaultKind::GmCollapse:
      return "gm-collapse";
    case InternalFaultKind::SelfTestThrow:
      return "selftest-throw";
    case InternalFaultKind::SelfTestStall:
      return "selftest-stall";
  }
  return "?";
}

std::string to_string(DetectionChannel channel) {
  switch (channel) {
    case DetectionChannel::None:
      return "none";
    case DetectionChannel::MissingOscillation:
      return "missing-oscillation";
    case DetectionChannel::LowAmplitude:
      return "low-amplitude";
    case DetectionChannel::Asymmetry:
      return "asymmetry";
    case DetectionChannel::FrequencyOutOfBand:
      return "frequency-out-of-band";
  }
  return "?";
}

std::string to_string(const InternalFault& fault) {
  switch (fault.kind) {
    case InternalFaultKind::DacLineStuck:
      return to_string(fault.bus) + "<" + std::to_string(fault.bit) + ">-stuck-" +
             (fault.stuck_high ? "1" : "0");
    case InternalFaultKind::DacSegmentDead:
      return "segment" + std::to_string(fault.segment) + "-dead";
    default:
      return to_string(fault.kind);
  }
}

std::vector<InternalFault> internal_fault_list() {
  std::vector<InternalFault> list;
  for (const DacBus bus : {DacBus::OscD, DacBus::OscE, DacBus::OscF}) {
    for (int bit = 0; bit < bus_width(bus); ++bit) {
      list.push_back(make_line_stuck(bus, bit, false));
      list.push_back(make_line_stuck(bus, bit, true));
    }
  }
  for (int segment = 0; segment < 8; ++segment) list.push_back(make_segment_dead(segment));
  list.push_back(make_fault(InternalFaultKind::WindowStuckHigh));
  list.push_back(make_fault(InternalFaultKind::WindowStuckLow));
  list.push_back(make_fault(InternalFaultKind::RectifierDead));
  list.push_back(make_fault(InternalFaultKind::FsmFrozen));
  list.push_back(make_fault(InternalFaultKind::WatchdogDead));
  list.push_back(make_gm_collapse());
  return list;
}

}  // namespace lcosc::faults
