// Fixed-step transient analysis with backward-Euler companion models and a
// per-step Newton loop for nonlinear elements.
//
// Reactive elements read their previous state from the last accepted
// solution vector, so the method is pure backward Euler: L-stable, first
// order.  The spice transient exists to cross-check the behavioral
// macro-models on small support circuits, not to run long RF transients
// (the ODE engines in src/numeric do that at a fraction of the cost).
//
// Hot-path structure (see DESIGN.md §9): elements are partitioned at
// setup into time-invariant-linear / time-varying-linear / nonlinear
// sets.  The linear matrix block (plus gmin diagonal) is stamped once per
// (dt, integration) pair into a cached base matrix; each step only the
// right-hand side is rebuilt, and nonlinear elements re-stamp their
// partials on top of a copy of the base.  Linear circuits keep the LU
// factorization of the base across steps and only re-solve the rhs.  The
// uncached reference path (reuse_lu = false) performs the identical
// floating-point operations with the base rebuilt every iteration, so
// traces are bit-identical between the two modes.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "spice/dc_solver.h"
#include "waveform/trace.h"

namespace lcosc::spice {

struct TransientOptions {
  double t_stop = 1e-3;
  double dt = 1e-6;
  // Companion-model integration: backward Euler (L-stable, damps ringing)
  // or trapezoidal (2nd order, energy-preserving on LC tanks).
  Integration integration = Integration::BackwardEuler;
  // Newton controls per time step.
  int max_iterations = 60;
  double voltage_abstol = 1e-6;
  double current_abstol = 1e-9;
  double reltol = 1e-4;
  double voltage_step_limit = 1.0;
  double gmin = 1e-12;
  // On per-step Newton non-convergence, retry the step with a halved dt
  // up to this many times before accepting the stale iterate.
  int max_step_halvings = 3;
  // Start from a DC operating point (true) or from all-zero state with
  // element initial conditions (false).
  bool start_from_dc = true;
  // Reuse the cached linear base matrix and (for linear circuits) the LU
  // factorization across steps.  false re-stamps and re-factors from
  // scratch every Newton iteration -- the A/B reference path, which must
  // produce bit-identical traces.
  bool reuse_lu = true;

  // --- adaptive LTE-controlled stepping ------------------------------------
  //
  // Default OFF: with adaptive = false the solver below is bit-identical
  // to the historical fixed-step implementation (enforced by the golden
  // trace in tests/test_spice_adaptive.cpp and the tier1.sh smoke step).
  //
  // When ON, the solver chooses its own internal step: the local
  // truncation error is estimated by step doubling (one step of h versus
  // two steps of h/2 from the same state, Richardson-scaled to the method
  // order), a PI controller accepts/rejects and proposes the next h, the
  // proposal is quantized onto a power-of-two geometric grid, and the
  // cached base matrix / LU factor is kept per quantized dt in a small
  // LRU so step-size changes do not re-stamp from scratch.  Output traces
  // are still emitted on the fixed `dt` grid (dense-output resampling),
  // so callers see the same trace shape either way.
  bool adaptive = false;
  // LTE acceptance per unknown: |lte| <= abstol(kind) + lte_reltol * |x|.
  double lte_reltol = 1e-3;
  double lte_voltage_abstol = 1e-6;
  double lte_current_abstol = 1e-9;
  // Internal step bounds; 0 = derive from dt (dt / 4096 and 64 * dt).
  double dt_min = 0.0;
  double dt_max = 0.0;
  // Resolution of the geometric dt grid (points per octave).  Coarser
  // grids mean fewer distinct step sizes and better base/LU cache reuse.
  int dt_steps_per_octave = 4;
  // Capacity of the dt-keyed base-matrix/LU LRU cache (min 1).
  std::size_t base_cache_capacity = 16;
};

// Newton-iteration histogram bucket count: bucket i counts steps that
// converged in i+1 iterations; the last bucket also absorbs every step
// that needed kNewtonHistogramBuckets or more.
inline constexpr std::size_t kNewtonHistogramBuckets = 8;

// Adaptive dt histogram: bucket i counts accepted steps whose size fell
// in octave i - kDtHistogramZeroBucket relative to the output dt, i.e.
// bucket 6 is [dt, 2 dt), bucket 5 is [dt/2, dt), and the end buckets
// absorb everything beyond the covered range.
inline constexpr std::size_t kDtHistogramBuckets = 16;
inline constexpr std::size_t kDtHistogramZeroBucket = 6;

// Solver observability: what the transient hot path actually did.
struct TransientStats {
  // Rebuilds of the cached linear base (matrix + invariant rhs).  One per
  // distinct step size when reuse is on; one per Newton iteration when off.
  std::size_t matrix_stamps = 0;
  // Per-step rhs assembly passes (time-varying linear elements).
  std::size_t rhs_stamps = 0;
  // LU factorizations (one per step size for linear circuits with reuse).
  std::size_t factorizations = 0;
  // Forward/back substitutions against a kept factor.
  std::size_t rhs_solves = 0;
  // Total Newton iterations across all steps and retries.
  std::size_t newton_iterations = 0;
  // Steps that needed at least one dt halving, and total halvings.
  std::size_t retried_steps = 0;
  std::size_t halvings = 0;
  // Adaptive stepping: accepted / LTE-rejected macro steps (0 when the
  // fixed-step path ran).
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  // dt-keyed base/LU cache traffic (reuse_lu = true only).
  std::size_t base_cache_hits = 0;
  std::size_t base_cache_misses = 0;
  std::size_t base_cache_evictions = 0;
  // Batched runs only: factorizations avoided because another variant in
  // the batch already factored a bit-identical (dt, base matrix) system.
  std::size_t shared_factor_hits = 0;
  // Converged-step iteration histogram (see kNewtonHistogramBuckets).
  std::array<std::size_t, kNewtonHistogramBuckets> newton_histogram{};
  // Accepted-step size histogram in octaves relative to the output dt
  // (see kDtHistogramBuckets); populated by the adaptive path only.
  std::array<std::size_t, kDtHistogramBuckets> dt_histogram{};
  // Wall time per phase [s].
  double stamp_seconds = 0.0;
  double factor_seconds = 0.0;
  double solve_seconds = 0.0;

  TransientStats& operator+=(const TransientStats& other);
};

struct TransientResult {
  bool converged = true;       // false if any time step failed to converge
                               // even after the dt-halving retries
  std::size_t steps = 0;
  // Steps that exhausted the halving retries and accepted a stale iterate.
  std::size_t failed_steps = 0;
  std::vector<Trace> traces;   // one per requested probe, in request order
  TransientStats stats;        // solver counters for this run

  [[nodiscard]] const Trace& trace(const std::string& name) const;
};

// Run transient analysis recording the voltages of `probe_nodes`.
[[nodiscard]] TransientResult run_transient(Circuit& circuit, const TransientOptions& options,
                                            const std::vector<std::string>& probe_nodes);

// Batched lockstep transient: advance N variant circuits through one
// shared time loop (fixed-step only; options.adaptive must be false).
// Each variant gets its own workspace and dt-keyed base cache, and the
// per-variant results are bit-identical to N independent run_transient
// calls -- the stepping arithmetic is byte-for-byte the same code.  What
// the batch adds is cross-case LU sharing (DESIGN.md §12): with
// reuse_lu = true, the first variant to factor a linear base system for a
// given (dt, base-matrix bytes) publishes the factor to a batch-wide
// pool, and every later variant whose base matches bit-for-bit reuses it
// instead of refactoring (stats.shared_factor_hits counts the reuse).
// Variants whose sampled parameters perturb the matrix simply miss the
// pool and factor their own base.  With reuse_lu = false (the reference
// path) no sharing happens at all.
[[nodiscard]] std::vector<TransientResult> run_transient_batch(
    const std::vector<Circuit*>& circuits, const TransientOptions& options,
    const std::vector<std::string>& probe_nodes);

}  // namespace lcosc::spice
