// Fixed-step transient analysis with backward-Euler companion models and a
// per-step Newton loop for nonlinear elements.
//
// Reactive elements read their previous state from the last accepted
// solution vector, so the method is pure backward Euler: L-stable, first
// order.  The spice transient exists to cross-check the behavioral
// macro-models on small support circuits, not to run long RF transients
// (the ODE engines in src/numeric do that at a fraction of the cost).
#pragma once

#include <string>
#include <vector>

#include "spice/dc_solver.h"
#include "waveform/trace.h"

namespace lcosc::spice {

struct TransientOptions {
  double t_stop = 1e-3;
  double dt = 1e-6;
  // Companion-model integration: backward Euler (L-stable, damps ringing)
  // or trapezoidal (2nd order, energy-preserving on LC tanks).
  Integration integration = Integration::BackwardEuler;
  // Newton controls per time step.
  int max_iterations = 60;
  double voltage_abstol = 1e-6;
  double current_abstol = 1e-9;
  double reltol = 1e-4;
  double voltage_step_limit = 1.0;
  double gmin = 1e-12;
  // On per-step Newton non-convergence, retry the step with a halved dt
  // up to this many times before accepting the stale iterate.
  int max_step_halvings = 3;
  // Start from a DC operating point (true) or from all-zero state with
  // element initial conditions (false).
  bool start_from_dc = true;
};

struct TransientResult {
  bool converged = true;       // false if any time step failed to converge
                               // even after the dt-halving retries
  std::size_t steps = 0;
  // Steps that exhausted the halving retries and accepted a stale iterate.
  std::size_t failed_steps = 0;
  std::vector<Trace> traces;   // one per requested probe, in request order

  [[nodiscard]] const Trace& trace(const std::string& name) const;
};

// Run transient analysis recording the voltages of `probe_nodes`.
[[nodiscard]] TransientResult run_transient(Circuit& circuit, const TransientOptions& options,
                                            const std::vector<std::string>& probe_nodes);

}  // namespace lcosc::spice
