#include "spice/diode.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::spice {

JunctionEval evaluate_junction(double v, const DiodeParams& params) {
  const double n_vt = params.emission_coefficient * params.temperature_voltage;
  const double v_lim = params.limit_voltage;

  JunctionEval eval;
  if (v <= v_lim) {
    const double e = std::exp(v / n_vt);
    eval.current = params.saturation_current * (e - 1.0);
    eval.conductance = params.saturation_current * e / n_vt;
  } else {
    // Linearized continuation of the exponential above v_lim (C1 smooth).
    const double e_lim = std::exp(v_lim / n_vt);
    eval.conductance = params.saturation_current * e_lim / n_vt;
    eval.current = params.saturation_current * (e_lim - 1.0) + eval.conductance * (v - v_lim);
  }
  eval.current += params.gmin * v;
  eval.conductance += params.gmin;
  return eval;
}

Diode::Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params)
    : Element(std::move(name)), anode_(anode), cathode_(cathode), params_(params) {
  LCOSC_REQUIRE(params_.saturation_current > 0.0, "saturation current must be positive");
  LCOSC_REQUIRE(params_.temperature_voltage > 0.0, "temperature voltage must be positive");
}

void Diode::stamp(Stamper& s, const StampContext& ctx) const {
  LCOSC_REQUIRE(ctx.x != nullptr, "diode stamping needs the current iterate");
  const double v = node_voltage(*ctx.x, anode_) - node_voltage(*ctx.x, cathode_);
  const JunctionEval eval = evaluate_junction(v, params_);

  const int a = mna_index(anode_);
  const int c = mna_index(cathode_);
  s.conductance(a, c, eval.conductance);
  // Companion source: i = i0 + g (v - v0)  =>  constant part i0 - g v0
  // flows anode -> cathode; inject its negation on the RHS.
  const double i_eq = eval.current - eval.conductance * v;
  s.current(c, a, i_eq);
}

double Diode::branch_current(const Vector& x, const StampContext&) const {
  const double v = node_voltage(x, anode_) - node_voltage(x, cathode_);
  return evaluate_junction(v, params_).current;
}


void Diode::stamp_ac(AcStamper& s, double, const Vector& dc_op) const {
  const double v = node_voltage(dc_op, anode_) - node_voltage(dc_op, cathode_);
  const JunctionEval eval = evaluate_junction(v, params_);
  s.admittance(mna_index(anode_), mna_index(cathode_), Complex{eval.conductance, 0.0});
}


ZenerDiode::ZenerDiode(std::string name, NodeId anode, NodeId cathode, ZenerParams params)
    : Element(std::move(name)), anode_(anode), cathode_(cathode), params_(params) {
  LCOSC_REQUIRE(params_.breakdown_voltage > 0.0, "breakdown voltage must be positive");
  LCOSC_REQUIRE(params_.breakdown_slope > 0.0, "breakdown slope must be positive");
  LCOSC_REQUIRE(params_.breakdown_knee_current > 0.0, "knee current must be positive");
}

JunctionEval ZenerDiode::evaluate(double v) const {
  // Forward conduction like a normal junction...
  JunctionEval eval = evaluate_junction(v, params_.junction);
  // ...plus the reverse breakdown: a mirrored limited exponential around
  // -Vz.  Reuse the junction limiter with the breakdown slope.
  DiodeParams breakdown = params_.junction;
  breakdown.temperature_voltage = params_.breakdown_slope;
  breakdown.emission_coefficient = 1.0;
  breakdown.saturation_current = params_.breakdown_knee_current;
  breakdown.limit_voltage = 20.0 * params_.breakdown_slope;
  breakdown.gmin = 0.0;  // the forward part already carries gmin
  const JunctionEval rev = evaluate_junction(-(v + params_.breakdown_voltage), breakdown);
  eval.current -= rev.current;
  eval.conductance += rev.conductance;
  return eval;
}

void ZenerDiode::stamp(Stamper& s, const StampContext& ctx) const {
  LCOSC_REQUIRE(ctx.x != nullptr, "zener stamping needs the current iterate");
  const double v = node_voltage(*ctx.x, anode_) - node_voltage(*ctx.x, cathode_);
  const JunctionEval eval = evaluate(v);
  const int a = mna_index(anode_);
  const int c = mna_index(cathode_);
  s.conductance(a, c, eval.conductance);
  s.current(c, a, eval.current - eval.conductance * v);
}

void ZenerDiode::stamp_ac(AcStamper& s, double, const Vector& dc_op) const {
  const double v = node_voltage(dc_op, anode_) - node_voltage(dc_op, cathode_);
  s.admittance(mna_index(anode_), mna_index(cathode_), Complex{evaluate(v).conductance, 0.0});
}

double ZenerDiode::branch_current(const Vector& x, const StampContext&) const {
  return evaluate(node_voltage(x, anode_) - node_voltage(x, cathode_)).current;
}

}  // namespace lcosc::spice
