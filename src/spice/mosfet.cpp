#include "spice/mosfet.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lcosc::spice {

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, NodeId bulk,
               MosfetParams params)
    : Element(std::move(name)), drain_(drain), gate_(gate), source_(source), bulk_(bulk),
      params_(params) {
  LCOSC_REQUIRE(params_.transconductance > 0.0, "transconductance factor must be positive");
  LCOSC_REQUIRE(params_.threshold_voltage >= 0.0, "threshold magnitude must be non-negative");
  LCOSC_REQUIRE(params_.phi > 0.0, "surface potential must be positive");
}

MosfetEval Mosfet::evaluate_channel(double vd, double vg, double vs, double vb,
                                    const MosfetParams& params) {
  MosfetEval eval;
  // The square-law device is symmetric: normalize so vds >= 0.
  eval.swapped = vd < vs;
  if (eval.swapped) std::swap(vd, vs);

  const double vgs = vg - vs;
  const double vds = vd - vs;
  const double vbs = vb - vs;

  // Body effect: vth rises as the bulk goes below the source.  Clamp the
  // argument of the square root for forward body bias.
  const double sqrt_arg = std::max(params.phi - vbs, 1e-4);
  const double sqrt_term = std::sqrt(sqrt_arg);
  const double vth =
      params.threshold_voltage + params.gamma * (sqrt_term - std::sqrt(params.phi));
  const double dvth_dvbs = -params.gamma / (2.0 * sqrt_term);

  const double vov = vgs - vth;
  const double k = params.transconductance;

  if (vov <= 0.0) {
    // Cutoff: only the conductance floor remains.
    eval.ids = 0.0;
    eval.gm = 0.0;
    eval.gds = params.gmin;
    eval.gmb = 0.0;
    eval.saturated = false;
    return eval;
  }

  const double clm = 1.0 + params.lambda * vds;
  if (vds >= vov) {
    // Saturation.
    eval.saturated = true;
    eval.ids = 0.5 * k * vov * vov * clm;
    eval.gm = k * vov * clm;
    eval.gds = 0.5 * k * vov * vov * params.lambda + params.gmin;
  } else {
    // Triode.
    eval.saturated = false;
    const double core = vov * vds - 0.5 * vds * vds;
    eval.ids = k * core * clm;
    eval.gm = k * vds * clm;
    eval.gds = k * (vov - vds) * clm + k * core * params.lambda + params.gmin;
  }
  // gmb = d ids / d vbs = gm * (-d vth / d vbs).
  eval.gmb = -eval.gm * dvth_dvbs;
  return eval;
}

void Mosfet::stamp(Stamper& s, const StampContext& ctx) const {
  LCOSC_REQUIRE(ctx.x != nullptr, "MOSFET stamping needs the current iterate");
  const Vector& x = *ctx.x;
  const double sgn = sign();

  const double v_d = node_voltage(x, drain_);
  const double v_g = node_voltage(x, gate_);
  const double v_s = node_voltage(x, source_);
  const double v_b = node_voltage(x, bulk_);

  const MosfetEval eval =
      evaluate_channel(sgn * v_d, sgn * v_g, sgn * v_s, sgn * v_b, params_);

  const NodeId d_eff = eval.swapped ? source_ : drain_;
  const NodeId s_eff = eval.swapped ? drain_ : source_;
  const int d = mna_index(d_eff);
  const int so = mna_index(s_eff);
  const int g = mna_index(gate_);
  const int b = mna_index(bulk_);

  // Real-space operating point relative to the effective source.
  const double vgs0 = v_g - node_voltage(x, s_eff);
  const double vds0 = node_voltage(x, d_eff) - node_voltage(x, s_eff);
  const double vbs0 = v_b - node_voltage(x, s_eff);
  const double i0 = sgn * eval.ids;  // channel current d_eff -> s_eff, real amps

  s.conductance(d, so, eval.gds);
  s.transconductance(d, so, g, so, eval.gm);
  s.transconductance(d, so, b, so, eval.gmb);
  const double i_eq = i0 - eval.gm * vgs0 - eval.gds * vds0 - eval.gmb * vbs0;
  // Constant part flows d_eff -> s_eff: inject into s_eff, draw from d_eff.
  s.current(so, d, i_eq);

  // Bulk junction diodes.  NMOS: p-bulk is the anode against the n+
  // source/drain; PMOS: p+ source/drain are anodes against the n-well bulk.
  auto stamp_junction = [&](NodeId anode, NodeId cathode) {
    const double v = node_voltage(x, anode) - node_voltage(x, cathode);
    const JunctionEval j = evaluate_junction(v, params_.junction);
    const int a_i = mna_index(anode);
    const int c_i = mna_index(cathode);
    s.conductance(a_i, c_i, j.conductance);
    s.current(c_i, a_i, j.current - j.conductance * v);
  };
  if (params_.type == MosType::Nmos) {
    stamp_junction(bulk_, source_);
    stamp_junction(bulk_, drain_);
  } else {
    stamp_junction(source_, bulk_);
    stamp_junction(drain_, bulk_);
  }
}

double Mosfet::branch_current(const Vector& x, const StampContext&) const {
  const double sgn = sign();
  const MosfetEval eval = evaluate_channel(
      sgn * node_voltage(x, drain_), sgn * node_voltage(x, gate_),
      sgn * node_voltage(x, source_), sgn * node_voltage(x, bulk_), params_);
  const double i_eff = sgn * eval.ids;  // d_eff -> s_eff
  return eval.swapped ? -i_eff : i_eff; // report as drain -> source
}

double Mosfet::drain_terminal_current(const Vector& x) const {
  StampContext ctx;
  double i_drain = branch_current(x, ctx);  // channel current absorbed at drain

  // Junction contribution at the drain terminal.
  if (params_.type == MosType::Nmos) {
    const double v = node_voltage(x, bulk_) - node_voltage(x, drain_);
    // Anode bulk -> cathode drain: junction current exits at the drain,
    // reducing the current the terminal absorbs.
    i_drain -= evaluate_junction(v, params_.junction).current;
  } else {
    const double v = node_voltage(x, drain_) - node_voltage(x, bulk_);
    // Anode drain -> cathode bulk: junction current enters at the drain.
    i_drain += evaluate_junction(v, params_.junction).current;
  }
  return i_drain;
}

MosfetParams nmos_035um(double w_over_l) {
  LCOSC_REQUIRE(w_over_l > 0.0, "W/L must be positive");
  MosfetParams p;
  p.type = MosType::Nmos;
  p.threshold_voltage = 0.55;
  p.transconductance = 170e-6 * w_over_l;  // kp_n ~ 170 uA/V^2 at 0.35 um
  p.lambda = 0.03;
  p.gamma = 0.58;
  p.phi = 0.84;
  p.junction.saturation_current = 1e-15;
  return p;
}

MosfetParams pmos_035um(double w_over_l) {
  LCOSC_REQUIRE(w_over_l > 0.0, "W/L must be positive");
  MosfetParams p;
  p.type = MosType::Pmos;
  p.threshold_voltage = 0.65;
  p.transconductance = 58e-6 * w_over_l;  // kp_p ~ 58 uA/V^2 at 0.35 um
  p.lambda = 0.05;
  p.gamma = 0.42;
  p.phi = 0.8;
  p.junction.saturation_current = 1e-15;
  return p;
}


void Mosfet::stamp_ac(AcStamper& s, double, const Vector& dc_op) const {
  const double sgn = sign();
  const MosfetEval eval = evaluate_channel(
      sgn * node_voltage(dc_op, drain_), sgn * node_voltage(dc_op, gate_),
      sgn * node_voltage(dc_op, source_), sgn * node_voltage(dc_op, bulk_), params_);

  const NodeId d_eff = eval.swapped ? source_ : drain_;
  const NodeId s_eff = eval.swapped ? drain_ : source_;
  const int d = mna_index(d_eff);
  const int so = mna_index(s_eff);

  s.admittance(d, so, Complex{eval.gds, 0.0});
  s.transadmittance(d, so, mna_index(gate_), so, Complex{eval.gm, 0.0});
  s.transadmittance(d, so, mna_index(bulk_), so, Complex{eval.gmb, 0.0});

  auto stamp_junction_ac = [&](NodeId anode, NodeId cathode) {
    const double v = node_voltage(dc_op, anode) - node_voltage(dc_op, cathode);
    const JunctionEval j = evaluate_junction(v, params_.junction);
    s.admittance(mna_index(anode), mna_index(cathode), Complex{j.conductance, 0.0});
  };
  if (params_.type == MosType::Nmos) {
    stamp_junction_ac(bulk_, source_);
    stamp_junction_ac(bulk_, drain_);
  } else {
    stamp_junction_ac(source_, bulk_);
    stamp_junction_ac(drain_, bulk_);
  }
}

}  // namespace lcosc::spice
