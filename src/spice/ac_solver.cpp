#include "spice/ac_solver.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/parallel.h"

namespace lcosc::spice {

Complex AcPoint::voltage(const Circuit& circuit, const std::string& node) const {
  return voltage(circuit.node(node));
}

Complex AcPoint::voltage(NodeId node) const {
  return node == kGround ? Complex{} : x[node - 1];
}

std::vector<AcPoint> ac_sweep(Circuit& circuit, const Vector& dc_op,
                              const std::vector<double>& frequencies,
                              std::size_t workers) {
  circuit.finalize();
  const std::size_t n = circuit.unknown_count();
  LCOSC_REQUIRE(dc_op.size() == n, "DC operating point size mismatch");
  for (const double f : frequencies) {
    LCOSC_REQUIRE(f >= 0.0, "AC frequency must be non-negative");
  }

  // Every frequency point is an independent complex solve against the
  // finalized (read-only from here) circuit: stamp_ac is const on all
  // elements and each point owns its matrix, so the sweep parallelizes
  // with results independent of worker count.
  return parallel_map(
      frequencies.size(),
      [&](std::size_t i) {
        const double f = frequencies[i];
        const double omega = kTwoPi * f;
        ComplexMatrix a(n, n);
        ComplexVector b(n);
        AcStamper stamper(a, b);
        for (const auto& element : circuit.elements()) element->stamp_ac(stamper, omega, dc_op);
        // The same gmin floor as DC keeps floating nodes solvable.
        for (std::size_t d = 0; d < circuit.node_count() - 1; ++d) {
          a(d, d) += Complex{1e-12, 0.0};
        }

        AcPoint point;
        point.frequency = f;
        const ComplexLu lu(a);
        point.ok = lu.try_solve(b, point.x);
        return point;
      },
      workers);
}

std::vector<ImpedancePoint> measure_impedance(Circuit& circuit, CurrentSource& probe,
                                              const std::string& positive,
                                              const std::string& negative, const Vector& dc_op,
                                              const std::vector<double>& frequencies,
                                              std::size_t workers) {
  const double original = probe.ac_magnitude();
  probe.set_ac_magnitude(1.0);
  const std::vector<AcPoint> points = ac_sweep(circuit, dc_op, frequencies, workers);
  probe.set_ac_magnitude(original);

  const NodeId pos = circuit.node(positive);
  const NodeId neg = circuit.node(negative);

  std::vector<ImpedancePoint> result;
  result.reserve(points.size());
  for (const auto& p : points) {
    ImpedancePoint z;
    z.frequency = p.frequency;
    if (p.ok) z.impedance = p.voltage(pos) - p.voltage(neg);
    result.push_back(z);
  }
  return result;
}

ResonanceSummary summarize_resonance(const std::vector<ImpedancePoint>& curve) {
  LCOSC_REQUIRE(curve.size() >= 3, "resonance summary needs at least three points");
  ResonanceSummary summary;
  std::size_t peak_index = 0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double mag = std::abs(curve[i].impedance);
    if (mag > summary.peak_magnitude) {
      summary.peak_magnitude = mag;
      summary.peak_frequency = curve[i].frequency;
      peak_index = i;
    }
  }

  // -3 dB crossings on both sides of the peak (linear interpolation in f).
  const double target = summary.peak_magnitude / std::sqrt(2.0);
  double f_low = 0.0;
  double f_high = 0.0;
  for (std::size_t i = peak_index; i-- > 0;) {
    const double m0 = std::abs(curve[i].impedance);
    const double m1 = std::abs(curve[i + 1].impedance);
    if (m0 <= target && m1 >= target) {
      const double frac = (target - m0) / (m1 - m0);
      f_low = curve[i].frequency + frac * (curve[i + 1].frequency - curve[i].frequency);
      break;
    }
  }
  for (std::size_t i = peak_index; i + 1 < curve.size(); ++i) {
    const double m0 = std::abs(curve[i].impedance);
    const double m1 = std::abs(curve[i + 1].impedance);
    if (m0 >= target && m1 <= target) {
      const double frac = (m0 - target) / (m0 - m1);
      f_high = curve[i].frequency + frac * (curve[i + 1].frequency - curve[i].frequency);
      break;
    }
  }
  if (f_low > 0.0 && f_high > f_low) {
    summary.bandwidth = f_high - f_low;
    summary.quality_factor = summary.peak_frequency / summary.bandwidth;
  }
  return summary;
}

}  // namespace lcosc::spice
