#include "spice/circuit.h"

#include "common/error.h"

namespace lcosc::spice {

NodeId Circuit::add_node(const std::string& name) {
  if (node_ids_.contains(name)) throw NetlistError("duplicate node name: " + name);
  const NodeId id = node_names_.size();
  node_names_.push_back(name);
  node_ids_.emplace(name, id);
  return id;
}

NodeId Circuit::node(const std::string& name) const {
  if (name == "0" || name == "gnd") return kGround;
  const auto it = node_ids_.find(name);
  if (it == node_ids_.end()) throw NetlistError("unknown node: " + name);
  return it->second;
}

NodeId Circuit::node_or_create(const std::string& name) {
  if (name == "0" || name == "gnd") return kGround;
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  return add_node(name);
}

bool Circuit::has_node(const std::string& name) const {
  return name == "0" || name == "gnd" || node_ids_.contains(name);
}

const std::string& Circuit::node_name(NodeId id) const {
  LCOSC_REQUIRE(id < node_names_.size(), "node id out of range");
  return node_names_[id];
}

void Circuit::register_element(std::unique_ptr<Element> element) {
  if (element_index_.contains(element->name())) {
    throw NetlistError("duplicate element name: " + element->name());
  }
  element_index_.emplace(element->name(), elements_.size());
  elements_.push_back(std::move(element));
  finalized_ = false;
}

Resistor& Circuit::resistor(const std::string& name, const std::string& a, const std::string& b,
                            double ohms) {
  return add<Resistor>(name, node_or_create(a), node_or_create(b), ohms);
}

Capacitor& Circuit::capacitor(const std::string& name, const std::string& a,
                              const std::string& b, double farads, double initial_voltage) {
  return add<Capacitor>(name, node_or_create(a), node_or_create(b), farads, initial_voltage);
}

Inductor& Circuit::inductor(const std::string& name, const std::string& a, const std::string& b,
                            double henries, double initial_current) {
  return add<Inductor>(name, node_or_create(a), node_or_create(b), henries, initial_current);
}

VoltageSource& Circuit::voltage_source(const std::string& name, const std::string& positive,
                                       const std::string& negative, double volts) {
  return add<VoltageSource>(name, node_or_create(positive), node_or_create(negative), volts);
}

CurrentSource& Circuit::current_source(const std::string& name, const std::string& from,
                                       const std::string& to, double amps) {
  return add<CurrentSource>(name, node_or_create(from), node_or_create(to), amps);
}

Diode& Circuit::diode(const std::string& name, const std::string& anode,
                      const std::string& cathode, DiodeParams params) {
  return add<Diode>(name, node_or_create(anode), node_or_create(cathode), params);
}

Mosfet& Circuit::mosfet(const std::string& name, const std::string& drain,
                        const std::string& gate, const std::string& source,
                        const std::string& bulk, MosfetParams params) {
  return add<Mosfet>(name, node_or_create(drain), node_or_create(gate), node_or_create(source),
                     node_or_create(bulk), params);
}

Vccs& Circuit::vccs(const std::string& name, const std::string& out_p, const std::string& out_n,
                    const std::string& ctl_p, const std::string& ctl_n, double gm) {
  return add<Vccs>(name, node_or_create(out_p), node_or_create(out_n), node_or_create(ctl_p),
                   node_or_create(ctl_n), gm);
}

Switch& Circuit::sw(const std::string& name, const std::string& a, const std::string& b,
                    const std::string& ctl_p, const std::string& ctl_n, Switch::Params params) {
  return add<Switch>(name, node_or_create(a), node_or_create(b), node_or_create(ctl_p),
                     node_or_create(ctl_n), params);
}

Element* Circuit::find(const std::string& name) const {
  const auto it = element_index_.find(name);
  return it == element_index_.end() ? nullptr : elements_[it->second].get();
}

bool Circuit::is_nonlinear() const {
  for (const auto& e : elements_) {
    if (e->is_nonlinear()) return true;
  }
  return false;
}

void Circuit::finalize() {
  if (finalized_) return;
  int base = static_cast<int>(node_count()) - 1;
  extra_variable_count_ = 0;
  for (const auto& e : elements_) {
    const int n = e->extra_variable_count();
    if (n > 0) {
      e->set_extra_variable_base(base);
      base += n;
      extra_variable_count_ += static_cast<std::size_t>(n);
    }
  }
  finalized_ = true;
}

std::size_t Circuit::unknown_count() const {
  LCOSC_REQUIRE(finalized_, "circuit must be finalized before solving");
  return node_count() - 1 + extra_variable_count_;
}

}  // namespace lcosc::spice
