#include "spice/dc_solver.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/logging.h"
#include "numeric/lu.h"

namespace lcosc::spice {
namespace {

// One Newton pass at fixed gmin / source scale.  Returns true on
// convergence; x holds the final iterate either way.
bool newton_pass(Circuit& circuit, Vector& x, double gmin, double source_scale,
                 const DcOptions& options, int& iterations_out) {
  const std::size_t n = circuit.unknown_count();
  const std::size_t voltage_count = circuit.node_count() - 1;

  Matrix a(n, n);
  Vector b(n, 0.0);
  // One LU workspace reused across iterations: factor() re-factors in
  // place without reallocating the pivot/matrix storage.
  LuDecomposition lu;
  Vector x_new;
  StampContext ctx;
  ctx.gmin = gmin;
  ctx.source_scale = source_scale;
  ctx.x = &x;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    iterations_out = iter + 1;
    a.set_zero();
    std::fill(b.begin(), b.end(), 0.0);

    Stamper stamper(a, b);
    for (const auto& element : circuit.elements()) element->stamp(stamper, ctx);
    // gmin from every node to ground keeps floating subcircuits solvable.
    for (std::size_t i = 0; i < voltage_count; ++i) a(i, i) += gmin;

    lu.factor(a);
    if (!lu.try_solve(b, x_new)) {
      // Singular even with gmin: bump the diagonal once and retry.
      for (std::size_t i = 0; i < n; ++i) a(i, i) += 1e-9;
      lu.factor(a);
      if (!lu.try_solve(b, x_new)) return false;
    }

    // Damped update with per-variable limiting on the voltage variables.
    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      double delta = x_new[i] - x[i];
      if (!std::isfinite(delta)) return false;
      const bool is_voltage = i < voltage_count;
      if (is_voltage && options.voltage_step_limit > 0.0) {
        delta = std::clamp(delta, -options.voltage_step_limit, options.voltage_step_limit);
      }
      const double abstol = is_voltage ? options.voltage_abstol : options.current_abstol;
      const double scale = std::max(std::abs(x[i]), std::abs(x[i] + delta));
      if (std::abs(delta) > abstol + options.reltol * scale) converged = false;
      x[i] += delta;
    }
    if (converged && iter > 0) return true;
  }
  return false;
}

}  // namespace

double DcSolution::voltage(const Circuit& circuit, const std::string& node_name) const {
  return Circuit::voltage(x, circuit.node(node_name));
}

double DcSolution::voltage(NodeId node) const { return Circuit::voltage(x, node); }

DcSolution solve_dc(Circuit& circuit, const DcOptions& options,
                    const std::optional<Vector>& initial_guess) {
  circuit.finalize();
  const std::size_t n = circuit.unknown_count();

  DcSolution solution;
  solution.x.assign(n, 0.0);
  if (initial_guess) {
    LCOSC_REQUIRE(initial_guess->size() == n, "initial guess size mismatch");
    solution.x = *initial_guess;
  }

  // Pass 1: direct Newton at floor gmin.
  Vector x = solution.x;
  if (newton_pass(circuit, x, options.gmin_floor, 1.0, options, solution.iterations)) {
    solution.converged = true;
    solution.x = std::move(x);
    return solution;
  }

  // Pass 2: gmin stepping from a heavily damped circuit down to the floor.
  x = solution.x;
  bool track_ok = true;
  for (double gmin = options.gmin_start; gmin >= options.gmin_floor / options.gmin_factor;
       gmin /= options.gmin_factor) {
    const double g = std::max(gmin, options.gmin_floor);
    ++solution.continuation_passes;
    if (!newton_pass(circuit, x, g, 1.0, options, solution.iterations)) {
      track_ok = false;
      break;
    }
    if (g == options.gmin_floor) break;
  }
  if (track_ok) {
    if (newton_pass(circuit, x, options.gmin_floor, 1.0, options, solution.iterations)) {
      solution.converged = true;
      solution.x = std::move(x);
      return solution;
    }
  }

  // Pass 3: source stepping (with floor gmin).
  x.assign(n, 0.0);
  bool ramp_ok = true;
  for (int step = 1; step <= options.source_steps; ++step) {
    const double scale = static_cast<double>(step) / options.source_steps;
    ++solution.continuation_passes;
    if (!newton_pass(circuit, x, options.gmin_floor, scale, options, solution.iterations)) {
      ramp_ok = false;
      break;
    }
  }
  if (ramp_ok) {
    solution.converged = true;
    solution.x = std::move(x);
    return solution;
  }

  LCOSC_LOG_WARN << "DC operating point did not converge (" << n << " unknowns)";
  solution.converged = false;
  solution.x = std::move(x);
  return solution;
}

}  // namespace lcosc::spice
