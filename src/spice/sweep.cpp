#include "spice/sweep.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::spice {

std::size_t SweepResult::converged_count() const {
  std::size_t n = 0;
  for (const auto& p : points) {
    if (p.converged) ++n;
  }
  return n;
}

namespace {

template <typename SourceT>
SweepResult run_sweep(Circuit& circuit, SourceT& source, const std::vector<double>& values,
                      const DcOptions& options) {
  const double original = source.value();
  SweepResult result;
  result.points.reserve(values.size());

  std::optional<Vector> guess;
  for (const double value : values) {
    source.set_value(value);
    DcSolution sol = solve_dc(circuit, options, guess);
    if (sol.converged) guess = sol.x;  // continuation for the next point
    SweepPoint point;
    point.value = value;
    point.converged = sol.converged;
    point.solution = std::move(sol);
    result.points.push_back(std::move(point));
  }
  source.set_value(original);
  return result;
}

}  // namespace

SweepResult dc_sweep(Circuit& circuit, VoltageSource& source, const std::vector<double>& values,
                     const DcOptions& options) {
  return run_sweep(circuit, source, values, options);
}

SweepResult dc_sweep(Circuit& circuit, CurrentSource& source, const std::vector<double>& values,
                     const DcOptions& options) {
  return run_sweep(circuit, source, values, options);
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  LCOSC_REQUIRE(count >= 2, "linspace needs at least two points");
  std::vector<double> v(count);
  for (std::size_t i = 0; i < count; ++i) {
    v[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
  }
  return v;
}

std::vector<double> logspace(double lo, double hi, std::size_t count) {
  LCOSC_REQUIRE(lo > 0.0 && hi > 0.0, "logspace endpoints must be positive");
  LCOSC_REQUIRE(count >= 2, "logspace needs at least two points");
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  std::vector<double> v(count);
  for (std::size_t i = 0; i < count; ++i) {
    v[i] = std::pow(10.0, llo + (lhi - llo) * static_cast<double>(i) /
                              static_cast<double>(count - 1));
  }
  return v;
}

}  // namespace lcosc::spice
