// Text netlist parser: builds a Circuit from SPICE-flavoured cards, so
// topologies (like the paper's Fig. 10/11 output stages) can live in
// files and tests instead of C++.
//
// Supported cards (names are case-insensitive, first letter selects the
// element; '*' starts a comment line, '+' continues the previous card,
// '.end' stops parsing, '.param'-style directives are not supported):
//
//   R<name> n1 n2 <value>
//   C<name> n1 n2 <value> [ic=<volts>]
//   L<name> n1 n2 <value> [ic=<amps>]
//   V<name> n+ n- <value> [ac=<magnitude>]
//   I<name> n+ n- <value> [ac=<magnitude>]
//   D<name> anode cathode [is=<amps>] [n=<coeff>]
//   M<name> d g s b <nmos|pmos> [wl=<ratio>] [vt=<volts>] [kp=<A/V^2>]
//           [lambda=<1/V>] [gamma=<sqrt(V)>]
//   G<name> out+ out- ctl+ ctl- <gm>          (VCCS)
//   E<name> out+ out- ctl+ ctl- <gain>        (VCVS)
//   S<name> n1 n2 ctl+ ctl- [ron=<ohm>] [roff=<ohm>] [vt=<volts>]
//   K<name> <L1> <L2> <k>                     (mutual coupling, |k| < 1)
//   Z<name> anode cathode [vz=<volts>] [is=<amps>]   (zener/ESD clamp)
//   X<name> <node...> <subcircuit>            (instantiate a .subckt)
//
// Subcircuits:
//   .subckt <name> <port...>
//     <cards...>
//   .ends
// Internal nodes and element names are scoped per instance ("X1.n");
// ground is global.  Instances may nest up to 8 levels.
//
// Values accept engineering suffixes: f p n u m k meg g t (e.g. "3.3u",
// "2k", "1meg"); trailing unit letters are ignored ("12.5uA", "100nF").
// Node "0" and "gnd" are ground.
#pragma once

#include <memory>
#include <string>

#include "spice/circuit.h"

namespace lcosc::spice {

// Parse a numeric literal with engineering suffix; throws NetlistError on
// malformed input.  Exposed for tests.
[[nodiscard]] double parse_engineering_value(const std::string& token);

// Parse a full netlist; throws NetlistError with a line reference on any
// malformed card.
[[nodiscard]] std::unique_ptr<Circuit> parse_netlist(const std::string& text);

// Convenience: read the file at `path` and parse it.
[[nodiscard]] std::unique_ptr<Circuit> parse_netlist_file(const std::string& path);

}  // namespace lcosc::spice
