// Mutual inductive coupling between two inductors (SPICE "K" element):
// the netlist-level counterpart of the dual system's coupled excitation
// coils (paper Fig. 9).
//
//   v1 = L1 di1/dt + M di2/dt
//   v2 = M  di1/dt + L2 di2/dt,   M = k sqrt(L1 L2)
//
// The element adds the off-diagonal M terms to the two inductors' branch
// equations; the inductors themselves keep stamping their diagonal parts.
#pragma once

#include "spice/element.h"
#include "spice/elements_linear.h"

namespace lcosc::spice {

class MutualCoupling : public Element {
 public:
  // Couples two inductors that are already part of the same circuit.
  // |coupling| must be < 1.
  MutualCoupling(std::string name, Inductor& first, Inductor& second, double coupling);

  // The -M/dt off-diagonal terms are fixed per dt; the history rhs is not.
  [[nodiscard]] TransientClass transient_class() const override {
    return TransientClass::TimeVaryingLinear;
  }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  void transient_begin(const Vector* x0) override;
  void transient_commit(const Vector& x, const StampContext& ctx) override;
  void transient_push() override;
  void transient_pop() override;

  [[nodiscard]] double mutual_inductance() const { return mutual_; }
  [[nodiscard]] double coupling() const { return coupling_; }

 private:
  Inductor& first_;
  Inductor& second_;
  double coupling_;
  double mutual_;
  // History of the partner currents (trapezoidal / BE companion), plus
  // the adaptive solver's one-deep trial snapshot.
  double i1_hist_ = 0.0;
  double i2_hist_ = 0.0;
  double i1_hist_saved_ = 0.0;
  double i2_hist_saved_ = 0.0;
};

}  // namespace lcosc::spice
