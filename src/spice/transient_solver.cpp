#include "spice/transient_solver.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/logging.h"
#include "numeric/lu.h"

namespace lcosc::spice {

const Trace& TransientResult::trace(const std::string& name) const {
  for (const auto& t : traces) {
    if (t.name() == name) return t;
  }
  throw ConfigError("no such transient probe: " + name);
}

namespace {

bool newton_time_step(Circuit& circuit, const StampContext& base_ctx, Vector& x,
                      const TransientOptions& options) {
  const std::size_t n = circuit.unknown_count();
  const std::size_t voltage_count = circuit.node_count() - 1;

  Matrix a(n, n);
  Vector b(n, 0.0);
  StampContext ctx = base_ctx;
  ctx.x = &x;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    a.set_zero();
    std::fill(b.begin(), b.end(), 0.0);
    Stamper stamper(a, b);
    for (const auto& element : circuit.elements()) element->stamp(stamper, ctx);
    for (std::size_t i = 0; i < voltage_count; ++i) a(i, i) += options.gmin;

    LuDecomposition lu(a);
    Vector x_new;
    if (!lu.try_solve(b, x_new)) return false;

    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      double delta = x_new[i] - x[i];
      if (!std::isfinite(delta)) return false;
      const bool is_voltage = i < voltage_count;
      if (is_voltage && options.voltage_step_limit > 0.0) {
        delta = std::clamp(delta, -options.voltage_step_limit, options.voltage_step_limit);
      }
      const double abstol = is_voltage ? options.voltage_abstol : options.current_abstol;
      const double scale = std::max(std::abs(x[i]), std::abs(x[i] + delta));
      if (std::abs(delta) > abstol + options.reltol * scale) converged = false;
      x[i] += delta;
    }
    if (converged) return true;
    // Linear circuits converge in one pass; give them a second stamp so the
    // first-iteration guard in the DC solver is not needed here.
    if (!circuit.is_nonlinear()) return true;
  }
  return false;
}

}  // namespace

TransientResult run_transient(Circuit& circuit, const TransientOptions& options,
                              const std::vector<std::string>& probe_nodes) {
  LCOSC_REQUIRE(options.dt > 0.0, "transient dt must be positive");
  LCOSC_REQUIRE(options.t_stop > 0.0, "transient t_stop must be positive");
  circuit.finalize();
  const std::size_t n = circuit.unknown_count();

  // Resolve probes up front.
  std::vector<NodeId> probes;
  probes.reserve(probe_nodes.size());
  for (const auto& name : probe_nodes) probes.push_back(circuit.node(name));

  TransientResult result;
  result.traces.reserve(probe_nodes.size());
  for (const auto& name : probe_nodes) result.traces.emplace_back(name);

  Vector x(n, 0.0);
  if (options.start_from_dc) {
    const DcSolution op = solve_dc(circuit);
    if (op.converged) x = op.x;
  }

  auto record = [&](double t, const Vector& state) {
    for (std::size_t p = 0; p < probes.size(); ++p) {
      result.traces[p].append(t, Circuit::voltage(state, probes[p]));
    }
  };
  // The t=0 sample is recorded at a slightly negative time stamp so the
  // strictly-increasing trace invariant holds for the first real step.
  record(-options.dt * 1e-6, x);

  StampContext ctx;
  ctx.dt = options.dt;
  ctx.integration = options.integration;
  ctx.gmin = options.gmin;

  // Initialize element transient history (trapezoidal state).
  for (const auto& element : circuit.elements()) {
    element->transient_begin(options.start_from_dc ? &x : nullptr);
  }

  Vector x_prev = x;
  double t = 0.0;
  bool first_step = true;
  while (t < options.t_stop) {
    // On the very first step (when not starting from a DC solution) the
    // reactive elements read their explicit initial conditions instead of
    // the all-zero state vector.
    ctx.x_prev = (first_step && !options.start_from_dc) ? nullptr : &x_prev;

    // Newton retry with halved dt: a failed step is re-solved from the
    // same accepted state with a smaller step (bounded), and the run only
    // accepts the stale iterate once the halvings are exhausted.  The
    // accepted (possibly reduced) step advances time, so subsequent steps
    // return to the nominal dt.
    double h = std::min(options.dt, options.t_stop - t);
    Vector x_next = x;  // predictor: previous solution
    int halvings = 0;
    bool step_ok = false;
    while (true) {
      ctx.dt = h;
      ctx.time = t + h;
      x_next = x;
      if (newton_time_step(circuit, ctx, x_next, options)) {
        step_ok = true;
        break;
      }
      if (halvings >= options.max_step_halvings) break;
      ++halvings;
      h *= 0.5;
    }
    if (!step_ok) {
      result.converged = false;
      ++result.failed_steps;
      LCOSC_LOG_WARN << "transient step at t=" << ctx.time << " failed to converge after "
                     << halvings << " dt halvings";
    }
    x_prev = x_next;
    x = x_next;
    t += h;
    ++result.steps;
    first_step = false;
    for (const auto& element : circuit.elements()) element->transient_commit(x, ctx);
    record(t, x);
  }
  return result;
}

}  // namespace lcosc::spice
