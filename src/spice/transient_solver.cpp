#include "spice/transient_solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>

#include "common/error.h"
#include "common/logging.h"
#include "numeric/interpolate.h"
#include "numeric/lu.h"
#include "numeric/step_control.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::spice {
namespace {

// Mirror one run's TransientStats into the process-wide registry.  The
// struct stays the per-run snapshot view (benches and tests read it from
// TransientResult); the registry aggregates across runs and campaign
// workers.  Flushing once per run keeps the per-step hot path free of
// registry traffic, and every flushed quantity is an order-independent
// sum, so campaign totals are identical for any worker count.
void flush_stats_to_registry(const TransientStats& stats, std::size_t steps,
                             std::size_t failed_steps) {
  if (!obs::metrics_enabled()) return;
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& runs = registry.counter("transient.runs");
  static obs::Counter& step_count = registry.counter("transient.steps");
  static obs::Counter& failed = registry.counter("transient.failed_steps");
  static obs::Counter& matrix_stamps = registry.counter("transient.matrix_stamps");
  static obs::Counter& rhs_stamps = registry.counter("transient.rhs_stamps");
  static obs::Counter& factorizations = registry.counter("transient.factorizations");
  static obs::Counter& rhs_solves = registry.counter("transient.rhs_solves");
  static obs::Counter& newton_iterations = registry.counter("transient.newton_iterations");
  static obs::Counter& retried_steps = registry.counter("transient.retried_steps");
  static obs::Counter& halvings = registry.counter("transient.halvings");
  static obs::Counter& accepted = registry.counter("transient.adaptive.accepted_steps");
  static obs::Counter& rejected = registry.counter("transient.adaptive.rejected_steps");
  static obs::Counter& cache_hits = registry.counter("transient.base_cache.hits");
  static obs::Counter& cache_misses = registry.counter("transient.base_cache.misses");
  static obs::Counter& cache_evictions = registry.counter("transient.base_cache.evictions");
  static obs::Counter& shared_hits = registry.counter("transient.shared_factor.hits");
  // Converged-step Newton iteration histogram: bucket i of the stats
  // array holds steps that converged in i+1 iterations.
  static obs::Histogram& newton_hist = registry.histogram(
      "transient.newton_iterations_per_step", {1, 2, 3, 4, 5, 6, 7});
  // Accepted adaptive step sizes in octaves relative to the output dt:
  // bucket value k covers steps in [dt * 2^k, dt * 2^(k+1)).
  static obs::Histogram& dt_hist = registry.histogram(
      "transient.adaptive.dt_octaves",
      {-6, -5, -4, -3, -2, -1, 0, 1, 2, 3, 4, 5, 6, 7, 8});
  // Wall time is run-to-run noise, not a deterministic quantity: gauges.
  static obs::Gauge& stamp_seconds = registry.gauge("transient.stamp_seconds");
  static obs::Gauge& factor_seconds = registry.gauge("transient.factor_seconds");
  static obs::Gauge& solve_seconds = registry.gauge("transient.solve_seconds");

  runs.add(1);
  step_count.add(steps);
  failed.add(failed_steps);
  matrix_stamps.add(stats.matrix_stamps);
  rhs_stamps.add(stats.rhs_stamps);
  factorizations.add(stats.factorizations);
  rhs_solves.add(stats.rhs_solves);
  newton_iterations.add(stats.newton_iterations);
  retried_steps.add(stats.retried_steps);
  halvings.add(stats.halvings);
  accepted.add(stats.accepted_steps);
  rejected.add(stats.rejected_steps);
  cache_hits.add(stats.base_cache_hits);
  cache_misses.add(stats.base_cache_misses);
  cache_evictions.add(stats.base_cache_evictions);
  shared_hits.add(stats.shared_factor_hits);
  for (std::size_t i = 0; i < stats.newton_histogram.size(); ++i) {
    newton_hist.record_many(static_cast<double>(i + 1), stats.newton_histogram[i]);
  }
  for (std::size_t i = 0; i < stats.dt_histogram.size(); ++i) {
    const double octave =
        static_cast<double>(i) - static_cast<double>(kDtHistogramZeroBucket);
    dt_hist.record_many(octave, stats.dt_histogram[i]);
  }
  stamp_seconds.add(stats.stamp_seconds);
  factor_seconds.add(stats.factor_seconds);
  solve_seconds.add(stats.solve_seconds);
}

}  // namespace

TransientStats& TransientStats::operator+=(const TransientStats& other) {
  matrix_stamps += other.matrix_stamps;
  rhs_stamps += other.rhs_stamps;
  factorizations += other.factorizations;
  rhs_solves += other.rhs_solves;
  newton_iterations += other.newton_iterations;
  retried_steps += other.retried_steps;
  halvings += other.halvings;
  accepted_steps += other.accepted_steps;
  rejected_steps += other.rejected_steps;
  base_cache_hits += other.base_cache_hits;
  base_cache_misses += other.base_cache_misses;
  base_cache_evictions += other.base_cache_evictions;
  shared_factor_hits += other.shared_factor_hits;
  for (std::size_t i = 0; i < newton_histogram.size(); ++i) {
    newton_histogram[i] += other.newton_histogram[i];
  }
  for (std::size_t i = 0; i < dt_histogram.size(); ++i) {
    dt_histogram[i] += other.dt_histogram[i];
  }
  stamp_seconds += other.stamp_seconds;
  factor_seconds += other.factor_seconds;
  solve_seconds += other.solve_seconds;
  return *this;
}

const Trace& TransientResult::trace(const std::string& name) const {
  for (const auto& t : traces) {
    if (t.name() == name) return t;
  }
  throw ConfigError("no such transient probe: " + name);
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Bit-exact matrix equality.  Plain == would be almost right, but LU with
// partial pivoting is a pure function of the matrix BYTES: treating
// +0.0 == -0.0 entries as "the same system" could hand a variant a factor
// whose sign-of-zero products differ from what its own factorization
// would produce.  Sharing only on byte equality keeps the shared-factor
// solve bit-identical to the unshared one by construction.
bool same_matrix_bits(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double xv = x(r, c);
      const double yv = y(r, c);
      std::uint64_t xb = 0;
      std::uint64_t yb = 0;
      std::memcpy(&xb, &xv, sizeof(xb));
      std::memcpy(&yb, &yv, sizeof(yb));
      if (xb != yb) return false;
    }
  }
  return true;
}

// Batch-wide pool of linear base factorizations, keyed (dt, base-matrix
// bytes).  The first variant to factor a given system publishes a copy of
// its LU; later variants with a bit-identical base reuse it instead of
// refactoring -- the cross-case extension of the per-run dt-keyed cache.
// Deque storage keeps published factors at stable addresses while the
// pool grows.  Lookup is a linear scan: batches hold at most a handful of
// distinct base systems (that is the point of sharing), so a scan beats
// hashing matrix bytes.  Single-threaded by design: the lockstep batch
// loop advances variants sequentially.
class SharedFactorPool {
 public:
  [[nodiscard]] const LuDecomposition* find(double dt, const Matrix& a) const {
    for (const auto& entry : entries_) {
      if (entry.dt == dt && same_matrix_bits(entry.a, a)) return &entry.lu;
    }
    return nullptr;
  }

  void publish(double dt, const Matrix& a, const LuDecomposition& lu) {
    entries_.push_back({dt, a, lu});
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    double dt = 0.0;
    Matrix a;
    LuDecomposition lu;
  };
  std::deque<Entry> entries_;
};

// Per-run workspace: the element partition, the dt-keyed cache of linear
// base systems, the Newton work buffers, and the reusable LU factors.
// Everything lives for one run_transient call, so element parameter
// changes between runs can never be observed through a stale cache.
class TransientWorkspace {
 public:
  // `pool` is the optional batch-wide shared-factor pool (run_transient_batch
  // with reuse_lu = true); single-run transients pass nullptr and behave
  // exactly as before.
  TransientWorkspace(Circuit& circuit, const TransientOptions& options,
                     SharedFactorPool* pool = nullptr)
      : options_(options),
        pool_(pool),
        n_(circuit.unknown_count()),
        voltage_count_(circuit.node_count() - 1),
        cache_capacity_(std::max<std::size_t>(options.base_cache_capacity, 1)) {
    for (const auto& e : circuit.elements()) {
      switch (e->transient_class()) {
        case TransientClass::TimeInvariantLinear:
          invariant_.push_back(e.get());
          break;
        case TransientClass::TimeVaryingLinear:
          varying_.push_back(e.get());
          break;
        case TransientClass::Nonlinear:
          nonlinear_.push_back(e.get());
          break;
      }
    }
    // Entries hold Matrix/LU storage; reserve so BaseEntry pointers stay
    // stable while the cache grows.
    cache_.reserve(cache_capacity_);
    b_step_.assign(n_, 0.0);
    if (!nonlinear_.empty()) {
      a_work_.resize(n_, n_);
      b_work_.assign(n_, 0.0);
    }
  }

  [[nodiscard]] bool linear() const { return nonlinear_.empty(); }

  // One transient step at ctx.dt / ctx.time: Newton iteration for
  // nonlinear circuits, a single cached-factor solve for linear ones.
  // x holds the previous accepted state on entry and the new iterate on
  // return (converged or not).
  bool solve_step(StampContext ctx, Vector& x, TransientStats& stats) {
    ctx.x = &x;
    ensure_base(ctx, stats);
    assemble_step_rhs(ctx, stats);

    if (linear()) {
      ++stats.newton_iterations;
      if (!current_->factor_valid) {
        // Batched runs: another variant may already have factored this
        // exact (dt, base-matrix bytes) system.  LU with partial pivoting
        // is a pure function of the matrix bytes, so reusing the
        // published factor is bit-identical to factoring our own copy.
        const LuDecomposition* shared =
            pool_ != nullptr ? pool_->find(current_->dt, current_->a) : nullptr;
        if (shared != nullptr) {
          current_->shared = shared;
          current_->factor_valid = true;
          ++stats.shared_factor_hits;
        } else {
          const auto t0 = Clock::now();
          const bool ok = current_->lu.factor(current_->a);
          stats.factor_seconds += seconds_since(t0);
          ++stats.factorizations;
          if (!ok) return false;
          current_->factor_valid = true;
          // Publish first-wins: later variants with the same base reuse
          // this factor for the rest of the batch.
          if (pool_ != nullptr) pool_->publish(current_->dt, current_->a, current_->lu);
        }
      }
      const LuDecomposition& lu =
          current_->shared != nullptr ? *current_->shared : current_->lu;
      const auto t0 = Clock::now();
      const bool solved = lu.try_solve(b_step_, x_new_);
      stats.solve_seconds += seconds_since(t0);
      ++stats.rhs_solves;
      if (!solved) return false;
      // Linear circuits converge in one pass; the update keeps the same
      // voltage-step clamp as the Newton path so both paths share one
      // update rule.
      if (!apply_update(x, nullptr)) return false;
      ++stats.newton_histogram[0];
      return true;
    }

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      ++stats.newton_iterations;
      if (!options_.reuse_lu && iter > 0) {
        // Reference path: rebuild the base from scratch every iteration,
        // exactly as an unpartitioned solver would.
        ensure_base(ctx, stats);
        assemble_step_rhs(ctx, stats);
      }
      auto t0 = Clock::now();
      a_work_ = current_->a;
      b_work_ = b_step_;
      Stamper overlay(a_work_, b_work_);
      for (const Element* e : nonlinear_) e->stamp(overlay, ctx);
      stats.stamp_seconds += seconds_since(t0);

      t0 = Clock::now();
      const bool factored = lu_work_.factor(a_work_);
      stats.factor_seconds += seconds_since(t0);
      ++stats.factorizations;
      if (!factored) return false;

      t0 = Clock::now();
      const bool solved = lu_work_.try_solve(b_work_, x_new_);
      stats.solve_seconds += seconds_since(t0);
      ++stats.rhs_solves;
      if (!solved) return false;

      bool converged = true;
      if (!apply_update(x, &converged)) return false;
      if (converged) {
        const std::size_t bucket =
            std::min(static_cast<std::size_t>(iter), kNewtonHistogramBuckets - 1);
        ++stats.newton_histogram[bucket];
        return true;
      }
    }
    return false;
  }

 private:
  // One cached linear base system: the matrix block (+ gmin diagonal),
  // the time-invariant rhs, and -- for linear circuits -- the kept LU
  // factor, all valid for exactly one step size.
  struct BaseEntry {
    double dt = 0.0;
    Matrix a;
    Vector b;
    LuDecomposition lu;
    // Batch-shared factor borrowed from the SharedFactorPool instead of
    // lu; non-null implies factor_valid.  Pool entries are address-stable
    // (deque) and outlive every workspace in the batch.
    const LuDecomposition* shared = nullptr;
    bool factor_valid = false;
    std::uint64_t last_use = 0;
  };

  // Point current_ at a base for ctx.dt: an LRU-cached entry when reuse
  // is on (stamping only on a miss), the re-stamped scratch entry on
  // every call when reuse is off.
  void ensure_base(const StampContext& ctx, TransientStats& stats) {
    if (options_.reuse_lu) {
      for (auto& entry : cache_) {
        if (entry.dt == ctx.dt) {
          entry.last_use = ++use_tick_;
          if (&entry != current_) current_ = &entry;
          ++stats.base_cache_hits;
          return;
        }
      }
      ++stats.base_cache_misses;
      current_ = acquire_entry(stats);
    } else {
      current_ = &scratch_;
    }
    stamp_base(*current_, ctx, stats);
  }

  // Free or least-recently-used cache slot.
  BaseEntry* acquire_entry(TransientStats& stats) {
    if (cache_.size() < cache_capacity_) {
      return &cache_.emplace_back();
    }
    BaseEntry* lru = &cache_.front();
    for (auto& entry : cache_) {
      if (entry.last_use < lru->last_use) lru = &entry;
    }
    ++stats.base_cache_evictions;
    return lru;
  }

  // Rebuild `entry` for ctx.dt: linear matrix block + gmin diagonal +
  // time-invariant rhs.
  void stamp_base(BaseEntry& entry, const StampContext& ctx, TransientStats& stats) {
    const auto t0 = Clock::now();
    if (entry.a.rows() != n_) entry.a.resize(n_, n_);
    entry.a.set_zero();
    entry.b.assign(n_, 0.0);
    Stamper full(entry.a, entry.b);
    for (const Element* e : invariant_) e->stamp(full, ctx);
    Stamper matrix_pass = Stamper::matrix_only(entry.a);
    for (const Element* e : varying_) e->stamp(matrix_pass, ctx);
    for (std::size_t i = 0; i < voltage_count_; ++i) entry.a(i, i) += options_.gmin;
    entry.dt = ctx.dt;
    entry.factor_valid = false;
    entry.shared = nullptr;
    entry.last_use = ++use_tick_;
    ++stats.matrix_stamps;
    stats.stamp_seconds += seconds_since(t0);
  }

  // Per-step rhs: invariant base plus the time-varying linear stamps
  // (companion histories, SIN/PULSE source levels).
  void assemble_step_rhs(const StampContext& ctx, TransientStats& stats) {
    const auto t0 = Clock::now();
    b_step_ = current_->b;
    Stamper rhs_pass = Stamper::rhs_only(b_step_);
    for (const Element* e : varying_) e->stamp(rhs_pass, ctx);
    ++stats.rhs_stamps;
    stats.stamp_seconds += seconds_since(t0);
  }

  // Damped update from x_new_ into x.  The convergence test uses the
  // *unclamped* Newton delta: a voltage_step_limit at or below the
  // tolerance window must not fake convergence on a still-moving iterate.
  // Returns false on a non-finite delta.  `converged` may be null when the
  // caller does not need the test (linear one-pass path).
  bool apply_update(Vector& x, bool* converged) {
    for (std::size_t i = 0; i < n_; ++i) {
      const double delta = x_new_[i] - x[i];
      if (!std::isfinite(delta)) return false;
      const bool is_voltage = i < voltage_count_;
      double applied = delta;
      if (is_voltage && options_.voltage_step_limit > 0.0) {
        applied = std::clamp(delta, -options_.voltage_step_limit, options_.voltage_step_limit);
      }
      if (converged != nullptr) {
        const double abstol = is_voltage ? options_.voltage_abstol : options_.current_abstol;
        const double scale = std::max(std::abs(x[i]), std::abs(x[i] + delta));
        if (std::abs(delta) > abstol + options_.reltol * scale) *converged = false;
      }
      x[i] += applied;
    }
    return true;
  }

  const TransientOptions& options_;
  SharedFactorPool* pool_;  // batch-wide factor pool, or nullptr
  std::size_t n_;
  std::size_t voltage_count_;
  std::size_t cache_capacity_;

  std::vector<const Element*> invariant_;
  std::vector<const Element*> varying_;
  std::vector<const Element*> nonlinear_;

  std::vector<BaseEntry> cache_;  // dt-keyed LRU (reuse_lu = true)
  BaseEntry scratch_;             // re-stamped every call (reuse_lu = false)
  BaseEntry* current_ = nullptr;  // base system for the step in flight
  std::uint64_t use_tick_ = 0;

  Vector b_step_;   // per-step rhs (base + time-varying linear)
  Matrix a_work_;   // per-iteration system with the nonlinear overlay
  Vector b_work_;
  Vector x_new_;
  LuDecomposition lu_work_;  // factor workspace for the nonlinear overlay
};

// Everything the two stepping loops share: the circuit-facing state set
// up by run_transient before the loop choice.
struct RunSetup {
  Circuit* circuit = nullptr;
  const TransientOptions* options = nullptr;
  std::vector<NodeId> probes;
  Vector x;  // initial state (DC operating point or zeros)
};

// --- fixed-step loop (the historical solver; bit-identical contract) --------

// Resumable fixed-step loop: construction performs everything run_fixed
// did before its first iteration, and each advance() call executes
// exactly one iteration of the historical loop body.  run_fixed drains
// the stepper to completion; run_transient_batch interleaves one
// advance() per variant so the whole batch moves through time in
// lockstep (which is what lets the shared-factor pool fill before most
// variants reach their first factorization).  The operation sequence per
// variant is byte-for-byte the old loop, so traces are bit-identical.
class FixedStepper {
 public:
  FixedStepper(RunSetup& setup, TransientWorkspace& ws, TransientResult& result)
      : circuit_(*setup.circuit),
        options_(*setup.options),
        probes_(setup.probes),
        ws_(ws),
        result_(result),
        x_(std::move(setup.x)),
        x_prev_(x_),
        dt_(options_.dt),
        // Guard against ulp-level residue masquerading as one more step.
        time_eps_(dt_ * 1e-9) {
    // The initial state is a genuine sample of the run: record it at
    // exactly t = 0.  Every accepted step advances time by at least
    // dt / 2^max_step_halvings, so the strictly-increasing trace
    // invariant holds without the historical negative-epsilon hack.
    record(0.0, x_);
    ctx_.dt = options_.dt;
    ctx_.integration = options_.integration;
    ctx_.gmin = options_.gmin;
  }

  [[nodiscard]] bool done() const {
    const double t =
        reduced_time_ + static_cast<double>(nominal_steps_) * dt_;
    return options_.t_stop - t <= time_eps_;
  }

  // One accepted (or stale-accepted) time step, including the dt-halving
  // retries.  No-op once done().
  void advance() {
    const double t = reduced_time_ + static_cast<double>(nominal_steps_) * dt_;
    const double remaining = options_.t_stop - t;
    if (remaining <= time_eps_) return;
    LCOSC_SPAN("transient.step");

    // On the very first step (when not starting from a DC solution) the
    // reactive elements read their explicit initial conditions instead of
    // the all-zero state vector.
    ctx_.x_prev = (first_step_ && !options_.start_from_dc) ? nullptr : &x_prev_;

    // Newton retry with halved dt: a failed step is re-solved from the
    // same accepted state with a smaller step (bounded), and the run only
    // accepts the stale iterate once the halvings are exhausted.  The
    // accepted (possibly reduced) step advances time, so subsequent steps
    // return to the nominal dt.
    const double h_full = std::min(dt_, remaining);
    const bool full_size = h_full >= dt_;
    double h = h_full;
    int halvings = 0;
    bool step_ok = false;
    Vector x_next = x_;  // predictor: previous solution
    double t_next = 0.0;
    while (true) {
      ctx_.dt = h;
      t_next = (full_size && halvings == 0)
                   ? reduced_time_ + static_cast<double>(nominal_steps_ + 1) * dt_
                   : t + h;
      ctx_.time = t_next;
      x_next = x_;
      if (ws_.solve_step(ctx_, x_next, result_.stats)) {
        step_ok = true;
        break;
      }
      if (halvings >= options_.max_step_halvings) break;
      ++halvings;
      ++result_.stats.halvings;
      if (obs::events_enabled()) {
        obs::Event("newton.halving").num("t", ctx_.time).num("dt", h).integer("halvings", halvings);
      }
      h *= 0.5;
    }
    if (halvings > 0) ++result_.stats.retried_steps;
    if (!step_ok) {
      result_.converged = false;
      ++result_.failed_steps;
      if (obs::events_enabled()) {
        obs::Event("newton.step_failed").num("t", ctx_.time).integer("halvings", halvings);
      }
      LCOSC_LOG_WARN << "transient step at t=" << ctx_.time << " failed to converge after "
                     << halvings << " dt halvings";
    }
    x_prev_ = x_next;
    x_ = x_next;
    if (full_size && halvings == 0) {
      ++nominal_steps_;
    } else {
      reduced_time_ += h;
    }
    ++result_.steps;
    first_step_ = false;
    for (const auto& element : circuit_.elements()) element->transient_commit(x_, ctx_);
    record(t_next, x_);
  }

 private:
  void record(double t, const Vector& state) {
    for (std::size_t p = 0; p < probes_.size(); ++p) {
      result_.traces[p].append(t, Circuit::voltage(state, probes_[p]));
    }
  }

  Circuit& circuit_;
  const TransientOptions& options_;
  const std::vector<NodeId>& probes_;
  TransientWorkspace& ws_;
  TransientResult& result_;

  StampContext ctx_;
  Vector x_;
  Vector x_prev_;
  const double dt_;
  const double time_eps_;
  // Step-indexed time: full-size steps advance an integer counter and
  // reduced (halved or final partial) steps accumulate separately, so a
  // long run cannot drift against t_stop through repeated t += h rounding
  // (same fix as the EnvelopeSimulator step loop).
  std::int64_t nominal_steps_ = 0;
  double reduced_time_ = 0.0;
  bool first_step_ = true;
};

void run_fixed(RunSetup& setup, TransientWorkspace& ws, TransientResult& result) {
  FixedStepper stepper(setup, ws, result);
  while (!stepper.done()) stepper.advance();
}

// --- adaptive LTE-controlled loop -------------------------------------------

void run_adaptive(RunSetup& setup, TransientWorkspace& ws, TransientResult& result) {
  Circuit& circuit = *setup.circuit;
  const TransientOptions& options = *setup.options;
  TransientStats& stats = result.stats;
  Vector x = std::move(setup.x);
  const std::size_t n = x.size();
  const std::size_t voltage_count = circuit.node_count() - 1;

  const double dt_out = options.dt;
  const double dt_min = options.dt_min > 0.0 ? options.dt_min : dt_out / 4096.0;
  const double dt_max_raw = options.dt_max > 0.0 ? options.dt_max : 64.0 * dt_out;
  const StepGrid grid(options.dt_steps_per_octave);
  const double dt_max = grid.quantize(std::max(dt_max_raw, dt_min));
  LCOSC_REQUIRE(dt_min <= dt_max, "adaptive dt_min must not exceed dt_max");

  const int order = options.integration == Integration::Trapezoidal ? 2 : 1;
  // Step-doubling Richardson: LTE(two half steps) = (x_half - x_full) /
  // (2^order - 1).
  const double lte_divisor = order == 2 ? 3.0 : 1.0;
  StepControlOptions sc;
  sc.order = order;
  PiStepController controller(sc);

  // Internal accepted states, resampled onto the fixed grid at the end.
  std::vector<SampledCurve> dense(setup.probes.size());
  for (std::size_t p = 0; p < dense.size(); ++p) {
    dense[p].append(0.0, Circuit::voltage(x, setup.probes[p]));
  }

  StampContext ctx;
  ctx.integration = options.integration;
  ctx.gmin = options.gmin;

  auto clamp_to_grid = [&](double h) {
    h = std::clamp(h, dt_min, dt_max);
    const double q = grid.quantize(h);
    // Quantizing rounds down; the floor itself need not be a grid point.
    return q >= dt_min ? q : dt_min;
  };

  Vector x_full(n), x_mid(n), x_half(n);
  const double time_eps = dt_out * 1e-9;
  double t = 0.0;
  double h = clamp_to_grid(dt_out);
  bool first_step = true;
  const double inf = std::numeric_limits<double>::infinity();

  while (options.t_stop - t > time_eps) {
    LCOSC_SPAN("transient.step");
    // The final step is truncated to land on t_stop (off-grid: one cache
    // key at worst, on the last step of the run).
    const double h_try = std::min(h, options.t_stop - t);
    const Vector* prev = (first_step && !options.start_from_dc) ? nullptr : &x;

    for (const auto& e : circuit.elements()) e->transient_push();

    // Trial: one full step of h_try...
    ctx.dt = h_try;
    ctx.time = t + h_try;
    ctx.x_prev = prev;
    x_full = x;
    bool ok = ws.solve_step(ctx, x_full, stats);
    // ...and two half steps from the same committed state.
    if (ok) {
      const double hh = 0.5 * h_try;
      ctx.dt = hh;
      ctx.time = t + hh;
      ctx.x_prev = prev;
      x_mid = x;
      ok = ws.solve_step(ctx, x_mid, stats);
      if (ok) {
        for (const auto& e : circuit.elements()) e->transient_commit(x_mid, ctx);
        ctx.dt = hh;
        ctx.time = t + h_try;
        ctx.x_prev = &x_mid;
        x_half = x_mid;
        ok = ws.solve_step(ctx, x_half, stats);
      }
    }

    double err = inf;
    if (ok) {
      err = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double lte = (x_half[i] - x_full[i]) / lte_divisor;
        const double abstol =
            i < voltage_count ? options.lte_voltage_abstol : options.lte_current_abstol;
        const double scale = std::max(std::abs(x[i]), std::abs(x_half[i]));
        err = std::max(err, std::abs(lte) / (abstol + options.lte_reltol * scale));
      }
      if (!std::isfinite(err)) err = inf;
    }

    const bool at_floor = h_try <= dt_min * (1.0 + 1e-12);
    if ((!ok || err > 1.0) && !at_floor) {
      // Reject: restore the committed element history and shrink.
      for (const auto& e : circuit.elements()) e->transient_pop();
      ++stats.rejected_steps;
      if (obs::events_enabled()) {
        obs::Event("adaptive.reject").num("t", t).num("dt", h_try).num("err", ok ? err : -1.0);
      }
      h = clamp_to_grid(h_try * controller.propose_factor(err, false));
      continue;
    }

    if (!ok) {
      // Step floor and the solver still fails: accept the stale iterate,
      // exactly like the fixed path does when its halvings run out.
      for (const auto& e : circuit.elements()) e->transient_pop();
      ctx.dt = h_try;
      ctx.time = t + h_try;
      ctx.x_prev = prev;
      x_half = x;
      (void)ws.solve_step(ctx, x_half, stats);
      result.converged = false;
      ++result.failed_steps;
      if (obs::events_enabled()) {
        obs::Event("newton.step_failed").num("t", ctx.time).num("dt", h_try);
      }
      LCOSC_LOG_WARN << "adaptive transient step at t=" << ctx.time
                     << " failed to converge at the dt floor";
      x = x_half;
      for (const auto& e : circuit.elements()) e->transient_commit(x, ctx);
      controller.reset();
    } else {
      // Accept the half-step solution; the element history was already
      // advanced through the two committed half steps.
      x = x_half;
      ctx.dt = 0.5 * h_try;
      ctx.time = t + h_try;
      for (const auto& e : circuit.elements()) e->transient_commit(x, ctx);
    }

    t += h_try;
    ++result.steps;
    ++stats.accepted_steps;
    first_step = false;
    {
      const double octave = std::floor(std::log2(h_try / dt_out));
      const double shifted = octave + static_cast<double>(kDtHistogramZeroBucket);
      const std::size_t bucket = static_cast<std::size_t>(
          std::clamp(shifted, 0.0, static_cast<double>(kDtHistogramBuckets - 1)));
      ++stats.dt_histogram[bucket];
    }
    for (std::size_t p = 0; p < dense.size(); ++p) {
      dense[p].append(t, Circuit::voltage(x, setup.probes[p]));
    }
    h = clamp_to_grid(h_try * controller.propose_factor(err, true));
  }

  // Dense output: resample the internal solution onto the caller's fixed
  // grid, with the same sample times as the fixed-step path (0, dt,
  // 2 dt, ..., plus a reduced final sample landing on t_stop).
  for (std::size_t p = 0; p < dense.size(); ++p) {
    result.traces[p].append(0.0, dense[p](0.0));
  }
  std::int64_t k = 0;
  for (;;) {
    const double t_k = static_cast<double>(k) * dt_out;
    const double remaining = options.t_stop - t_k;
    if (remaining <= time_eps) break;
    const double t_next =
        remaining >= dt_out ? static_cast<double>(k + 1) * dt_out : options.t_stop;
    for (std::size_t p = 0; p < dense.size(); ++p) {
      result.traces[p].append(t_next, dense[p](t_next));
    }
    ++k;
  }
}

}  // namespace

TransientResult run_transient(Circuit& circuit, const TransientOptions& options,
                              const std::vector<std::string>& probe_nodes) {
  LCOSC_SPAN("transient.run");
  LCOSC_REQUIRE(options.dt > 0.0, "transient dt must be positive");
  LCOSC_REQUIRE(options.t_stop > 0.0, "transient t_stop must be positive");
  circuit.finalize();
  const std::size_t n = circuit.unknown_count();

  RunSetup setup;
  setup.circuit = &circuit;
  setup.options = &options;
  setup.probes.reserve(probe_nodes.size());
  for (const auto& name : probe_nodes) setup.probes.push_back(circuit.node(name));

  TransientResult result;
  result.traces.reserve(probe_nodes.size());
  for (const auto& name : probe_nodes) result.traces.emplace_back(name);

  setup.x.assign(n, 0.0);
  if (options.start_from_dc) {
    const DcSolution op = solve_dc(circuit);
    if (op.converged) setup.x = op.x;
  }

  // Initialize element transient history (trapezoidal state).
  for (const auto& element : circuit.elements()) {
    element->transient_begin(options.start_from_dc ? &setup.x : nullptr);
  }

  TransientWorkspace ws(circuit, options);
  if (options.adaptive) {
    run_adaptive(setup, ws, result);
  } else {
    run_fixed(setup, ws, result);
  }
  flush_stats_to_registry(result.stats, result.steps, result.failed_steps);
  return result;
}

std::vector<TransientResult> run_transient_batch(const std::vector<Circuit*>& circuits,
                                                 const TransientOptions& options,
                                                 const std::vector<std::string>& probe_nodes) {
  LCOSC_SPAN("transient.batch_run");
  LCOSC_REQUIRE(!options.adaptive, "run_transient_batch supports fixed-step runs only");
  LCOSC_REQUIRE(options.dt > 0.0, "transient dt must be positive");
  LCOSC_REQUIRE(options.t_stop > 0.0, "transient t_stop must be positive");
  for (Circuit* circuit : circuits) {
    LCOSC_REQUIRE(circuit != nullptr, "run_transient_batch circuit must not be null");
  }

  const std::size_t count = circuits.size();
  std::vector<TransientResult> results(count);
  if (count == 0) return results;

  // Cross-case sharing only makes sense on the cached path; the
  // reuse_lu = false reference re-factors every iteration by contract.
  SharedFactorPool pool;
  SharedFactorPool* pool_ptr = options.reuse_lu ? &pool : nullptr;

  // Per-variant preamble, identical to run_transient: DC operating point,
  // transient history init, private workspace.  Workspaces and steppers
  // live in unique_ptrs because they hold references into their setup.
  std::vector<RunSetup> setups(count);
  std::vector<std::unique_ptr<TransientWorkspace>> workspaces;
  std::vector<std::unique_ptr<FixedStepper>> steppers;
  workspaces.reserve(count);
  steppers.reserve(count);
  for (std::size_t v = 0; v < count; ++v) {
    Circuit& circuit = *circuits[v];
    circuit.finalize();
    const std::size_t n = circuit.unknown_count();

    RunSetup& setup = setups[v];
    setup.circuit = &circuit;
    setup.options = &options;
    setup.probes.reserve(probe_nodes.size());
    for (const auto& name : probe_nodes) setup.probes.push_back(circuit.node(name));

    TransientResult& result = results[v];
    result.traces.reserve(probe_nodes.size());
    for (const auto& name : probe_nodes) result.traces.emplace_back(name);

    setup.x.assign(n, 0.0);
    if (options.start_from_dc) {
      const DcSolution op = solve_dc(circuit);
      if (op.converged) setup.x = op.x;
    }
    for (const auto& element : circuit.elements()) {
      element->transient_begin(options.start_from_dc ? &setup.x : nullptr);
    }

    workspaces.push_back(std::make_unique<TransientWorkspace>(circuit, options, pool_ptr));
    steppers.push_back(std::make_unique<FixedStepper>(setups[v], *workspaces.back(), result));
  }

  // Lockstep round-robin: one step per variant per sweep.  All variants
  // share the same (dt, t_stop), so they finish together; the loop shape
  // only matters for how early the factor pool fills.
  bool any_running = true;
  while (any_running) {
    any_running = false;
    for (auto& stepper : steppers) {
      if (stepper->done()) continue;
      stepper->advance();
      any_running = true;
    }
  }

  for (const auto& result : results) {
    flush_stats_to_registry(result.stats, result.steps, result.failed_steps);
  }
  return results;
}

}  // namespace lcosc::spice
