#include "spice/transient_solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "common/error.h"
#include "common/logging.h"
#include "numeric/lu.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace lcosc::spice {
namespace {

// Mirror one run's TransientStats into the process-wide registry.  The
// struct stays the per-run snapshot view (benches and tests read it from
// TransientResult); the registry aggregates across runs and campaign
// workers.  Flushing once per run keeps the per-step hot path free of
// registry traffic, and every flushed quantity is an order-independent
// sum, so campaign totals are identical for any worker count.
void flush_stats_to_registry(const TransientStats& stats, std::size_t steps,
                             std::size_t failed_steps) {
  if (!obs::metrics_enabled()) return;
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& runs = registry.counter("transient.runs");
  static obs::Counter& step_count = registry.counter("transient.steps");
  static obs::Counter& failed = registry.counter("transient.failed_steps");
  static obs::Counter& matrix_stamps = registry.counter("transient.matrix_stamps");
  static obs::Counter& rhs_stamps = registry.counter("transient.rhs_stamps");
  static obs::Counter& factorizations = registry.counter("transient.factorizations");
  static obs::Counter& rhs_solves = registry.counter("transient.rhs_solves");
  static obs::Counter& newton_iterations = registry.counter("transient.newton_iterations");
  static obs::Counter& retried_steps = registry.counter("transient.retried_steps");
  static obs::Counter& halvings = registry.counter("transient.halvings");
  // Converged-step Newton iteration histogram: bucket i of the stats
  // array holds steps that converged in i+1 iterations.
  static obs::Histogram& newton_hist = registry.histogram(
      "transient.newton_iterations_per_step", {1, 2, 3, 4, 5, 6, 7});
  // Wall time is run-to-run noise, not a deterministic quantity: gauges.
  static obs::Gauge& stamp_seconds = registry.gauge("transient.stamp_seconds");
  static obs::Gauge& factor_seconds = registry.gauge("transient.factor_seconds");
  static obs::Gauge& solve_seconds = registry.gauge("transient.solve_seconds");

  runs.add(1);
  step_count.add(steps);
  failed.add(failed_steps);
  matrix_stamps.add(stats.matrix_stamps);
  rhs_stamps.add(stats.rhs_stamps);
  factorizations.add(stats.factorizations);
  rhs_solves.add(stats.rhs_solves);
  newton_iterations.add(stats.newton_iterations);
  retried_steps.add(stats.retried_steps);
  halvings.add(stats.halvings);
  for (std::size_t i = 0; i < stats.newton_histogram.size(); ++i) {
    newton_hist.record_many(static_cast<double>(i + 1), stats.newton_histogram[i]);
  }
  stamp_seconds.add(stats.stamp_seconds);
  factor_seconds.add(stats.factor_seconds);
  solve_seconds.add(stats.solve_seconds);
}

}  // namespace

TransientStats& TransientStats::operator+=(const TransientStats& other) {
  matrix_stamps += other.matrix_stamps;
  rhs_stamps += other.rhs_stamps;
  factorizations += other.factorizations;
  rhs_solves += other.rhs_solves;
  newton_iterations += other.newton_iterations;
  retried_steps += other.retried_steps;
  halvings += other.halvings;
  for (std::size_t i = 0; i < newton_histogram.size(); ++i) {
    newton_histogram[i] += other.newton_histogram[i];
  }
  stamp_seconds += other.stamp_seconds;
  factor_seconds += other.factor_seconds;
  solve_seconds += other.solve_seconds;
  return *this;
}

const Trace& TransientResult::trace(const std::string& name) const {
  for (const auto& t : traces) {
    if (t.name() == name) return t;
  }
  throw ConfigError("no such transient probe: " + name);
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Per-run workspace: the element partition, the cached linear base system,
// the Newton work buffers, and the reusable LU factor.  Everything lives
// for one run_transient call, so element parameter changes between runs
// can never be observed through a stale cache.
class TransientWorkspace {
 public:
  TransientWorkspace(Circuit& circuit, const TransientOptions& options)
      : options_(options),
        n_(circuit.unknown_count()),
        voltage_count_(circuit.node_count() - 1) {
    for (const auto& e : circuit.elements()) {
      switch (e->transient_class()) {
        case TransientClass::TimeInvariantLinear:
          invariant_.push_back(e.get());
          break;
        case TransientClass::TimeVaryingLinear:
          varying_.push_back(e.get());
          break;
        case TransientClass::Nonlinear:
          nonlinear_.push_back(e.get());
          break;
      }
    }
    a_base_.resize(n_, n_);
    b_base_.assign(n_, 0.0);
    b_step_.assign(n_, 0.0);
    if (!nonlinear_.empty()) {
      a_work_.resize(n_, n_);
      b_work_.assign(n_, 0.0);
    }
  }

  [[nodiscard]] bool linear() const { return nonlinear_.empty(); }

  // One transient step at ctx.dt / ctx.time: Newton iteration for
  // nonlinear circuits, a single cached-factor solve for linear ones.
  // x holds the previous accepted state on entry and the new iterate on
  // return (converged or not).
  bool solve_step(StampContext ctx, Vector& x, TransientStats& stats) {
    ctx.x = &x;
    ensure_base(ctx, stats);
    assemble_step_rhs(ctx, stats);

    if (linear()) {
      ++stats.newton_iterations;
      if (!factor_valid_) {
        const auto t0 = Clock::now();
        const bool ok = lu_.factor(a_base_);
        stats.factor_seconds += seconds_since(t0);
        ++stats.factorizations;
        if (!ok) return false;
        factor_valid_ = true;
      }
      const auto t0 = Clock::now();
      const bool solved = lu_.try_solve(b_step_, x_new_);
      stats.solve_seconds += seconds_since(t0);
      ++stats.rhs_solves;
      if (!solved) return false;
      // Linear circuits converge in one pass; the update keeps the same
      // voltage-step clamp as the Newton path so both paths share one
      // update rule.
      if (!apply_update(x, nullptr)) return false;
      ++stats.newton_histogram[0];
      return true;
    }

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      ++stats.newton_iterations;
      if (!options_.reuse_lu && iter > 0) {
        // Reference path: rebuild the base from scratch every iteration,
        // exactly as an unpartitioned solver would.
        ensure_base(ctx, stats);
        assemble_step_rhs(ctx, stats);
      }
      auto t0 = Clock::now();
      a_work_ = a_base_;
      b_work_ = b_step_;
      Stamper overlay(a_work_, b_work_);
      for (const Element* e : nonlinear_) e->stamp(overlay, ctx);
      stats.stamp_seconds += seconds_since(t0);

      t0 = Clock::now();
      const bool factored = lu_.factor(a_work_);
      stats.factor_seconds += seconds_since(t0);
      ++stats.factorizations;
      factor_valid_ = false;  // the base factor is gone
      if (!factored) return false;

      t0 = Clock::now();
      const bool solved = lu_.try_solve(b_work_, x_new_);
      stats.solve_seconds += seconds_since(t0);
      ++stats.rhs_solves;
      if (!solved) return false;

      bool converged = true;
      if (!apply_update(x, &converged)) return false;
      if (converged) {
        const std::size_t bucket =
            std::min(static_cast<std::size_t>(iter), kNewtonHistogramBuckets - 1);
        ++stats.newton_histogram[bucket];
        return true;
      }
    }
    return false;
  }

 private:
  // Rebuild the cached base (linear matrix block + gmin diagonal +
  // time-invariant rhs) when the step size changed -- or on every call
  // when reuse is disabled.
  void ensure_base(const StampContext& ctx, TransientStats& stats) {
    if (options_.reuse_lu && base_valid_ && ctx.dt == base_dt_) return;
    const auto t0 = Clock::now();
    a_base_.set_zero();
    std::fill(b_base_.begin(), b_base_.end(), 0.0);
    Stamper full(a_base_, b_base_);
    for (const Element* e : invariant_) e->stamp(full, ctx);
    Stamper matrix_pass = Stamper::matrix_only(a_base_);
    for (const Element* e : varying_) e->stamp(matrix_pass, ctx);
    for (std::size_t i = 0; i < voltage_count_; ++i) a_base_(i, i) += options_.gmin;
    base_dt_ = ctx.dt;
    base_valid_ = true;
    factor_valid_ = false;
    ++stats.matrix_stamps;
    stats.stamp_seconds += seconds_since(t0);
  }

  // Per-step rhs: invariant base plus the time-varying linear stamps
  // (companion histories, SIN/PULSE source levels).
  void assemble_step_rhs(const StampContext& ctx, TransientStats& stats) {
    const auto t0 = Clock::now();
    b_step_ = b_base_;
    Stamper rhs_pass = Stamper::rhs_only(b_step_);
    for (const Element* e : varying_) e->stamp(rhs_pass, ctx);
    ++stats.rhs_stamps;
    stats.stamp_seconds += seconds_since(t0);
  }

  // Damped update from x_new_ into x.  The convergence test uses the
  // *unclamped* Newton delta: a voltage_step_limit at or below the
  // tolerance window must not fake convergence on a still-moving iterate.
  // Returns false on a non-finite delta.  `converged` may be null when the
  // caller does not need the test (linear one-pass path).
  bool apply_update(Vector& x, bool* converged) {
    for (std::size_t i = 0; i < n_; ++i) {
      const double delta = x_new_[i] - x[i];
      if (!std::isfinite(delta)) return false;
      const bool is_voltage = i < voltage_count_;
      double applied = delta;
      if (is_voltage && options_.voltage_step_limit > 0.0) {
        applied = std::clamp(delta, -options_.voltage_step_limit, options_.voltage_step_limit);
      }
      if (converged != nullptr) {
        const double abstol = is_voltage ? options_.voltage_abstol : options_.current_abstol;
        const double scale = std::max(std::abs(x[i]), std::abs(x[i] + delta));
        if (std::abs(delta) > abstol + options_.reltol * scale) *converged = false;
      }
      x[i] += applied;
    }
    return true;
  }

  const TransientOptions& options_;
  std::size_t n_;
  std::size_t voltage_count_;

  std::vector<const Element*> invariant_;
  std::vector<const Element*> varying_;
  std::vector<const Element*> nonlinear_;

  Matrix a_base_;   // cached linear matrix block (+ gmin diagonal)
  Vector b_base_;   // cached time-invariant rhs
  Vector b_step_;   // per-step rhs (base + time-varying linear)
  Matrix a_work_;   // per-iteration system with the nonlinear overlay
  Vector b_work_;
  Vector x_new_;
  LuDecomposition lu_;  // reusable factor workspace

  double base_dt_ = 0.0;
  bool base_valid_ = false;
  bool factor_valid_ = false;  // lu_ currently holds the base factor
};

}  // namespace

TransientResult run_transient(Circuit& circuit, const TransientOptions& options,
                              const std::vector<std::string>& probe_nodes) {
  LCOSC_SPAN("transient.run");
  LCOSC_REQUIRE(options.dt > 0.0, "transient dt must be positive");
  LCOSC_REQUIRE(options.t_stop > 0.0, "transient t_stop must be positive");
  circuit.finalize();
  const std::size_t n = circuit.unknown_count();

  // Resolve probes up front.
  std::vector<NodeId> probes;
  probes.reserve(probe_nodes.size());
  for (const auto& name : probe_nodes) probes.push_back(circuit.node(name));

  TransientResult result;
  result.traces.reserve(probe_nodes.size());
  for (const auto& name : probe_nodes) result.traces.emplace_back(name);

  Vector x(n, 0.0);
  if (options.start_from_dc) {
    const DcSolution op = solve_dc(circuit);
    if (op.converged) x = op.x;
  }

  auto record = [&](double t, const Vector& state) {
    for (std::size_t p = 0; p < probes.size(); ++p) {
      result.traces[p].append(t, Circuit::voltage(state, probes[p]));
    }
  };
  // The initial state is a genuine sample of the run: record it at
  // exactly t = 0.  Every accepted step advances time by at least
  // dt / 2^max_step_halvings, so the strictly-increasing trace invariant
  // holds without the historical negative-epsilon hack.
  record(0.0, x);

  StampContext ctx;
  ctx.dt = options.dt;
  ctx.integration = options.integration;
  ctx.gmin = options.gmin;

  // Initialize element transient history (trapezoidal state).
  for (const auto& element : circuit.elements()) {
    element->transient_begin(options.start_from_dc ? &x : nullptr);
  }

  TransientWorkspace ws(circuit, options);

  Vector x_prev = x;
  const double dt = options.dt;
  // Step-indexed time: full-size steps advance an integer counter and
  // reduced (halved or final partial) steps accumulate separately, so a
  // long run cannot drift against t_stop through repeated t += h rounding
  // (same fix as the EnvelopeSimulator step loop).
  std::int64_t nominal_steps = 0;
  double reduced_time = 0.0;
  // Guard against ulp-level residue masquerading as one more step.
  const double time_eps = dt * 1e-9;
  bool first_step = true;
  for (;;) {
    const double t = reduced_time + static_cast<double>(nominal_steps) * dt;
    const double remaining = options.t_stop - t;
    if (remaining <= time_eps) break;
    LCOSC_SPAN("transient.step");

    // On the very first step (when not starting from a DC solution) the
    // reactive elements read their explicit initial conditions instead of
    // the all-zero state vector.
    ctx.x_prev = (first_step && !options.start_from_dc) ? nullptr : &x_prev;

    // Newton retry with halved dt: a failed step is re-solved from the
    // same accepted state with a smaller step (bounded), and the run only
    // accepts the stale iterate once the halvings are exhausted.  The
    // accepted (possibly reduced) step advances time, so subsequent steps
    // return to the nominal dt.
    const double h_full = std::min(dt, remaining);
    const bool full_size = h_full >= dt;
    double h = h_full;
    int halvings = 0;
    bool step_ok = false;
    Vector x_next = x;  // predictor: previous solution
    double t_next = 0.0;
    while (true) {
      ctx.dt = h;
      t_next = (full_size && halvings == 0)
                   ? reduced_time + static_cast<double>(nominal_steps + 1) * dt
                   : t + h;
      ctx.time = t_next;
      x_next = x;
      if (ws.solve_step(ctx, x_next, result.stats)) {
        step_ok = true;
        break;
      }
      if (halvings >= options.max_step_halvings) break;
      ++halvings;
      ++result.stats.halvings;
      if (obs::events_enabled()) {
        obs::Event("newton.halving").num("t", ctx.time).num("dt", h).integer("halvings", halvings);
      }
      h *= 0.5;
    }
    if (halvings > 0) ++result.stats.retried_steps;
    if (!step_ok) {
      result.converged = false;
      ++result.failed_steps;
      if (obs::events_enabled()) {
        obs::Event("newton.step_failed").num("t", ctx.time).integer("halvings", halvings);
      }
      LCOSC_LOG_WARN << "transient step at t=" << ctx.time << " failed to converge after "
                     << halvings << " dt halvings";
    }
    x_prev = x_next;
    x = x_next;
    if (full_size && halvings == 0) {
      ++nominal_steps;
    } else {
      reduced_time += h;
    }
    ++result.steps;
    first_step = false;
    for (const auto& element : circuit.elements()) element->transient_commit(x, ctx);
    record(t_next, x);
  }
  flush_stats_to_registry(result.stats, result.steps, result.failed_steps);
  return result;
}

}  // namespace lcosc::spice
