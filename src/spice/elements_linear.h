// Linear circuit elements: R, C, L, independent sources, controlled
// sources and a (smoothly) voltage-controlled switch.
#pragma once

#include "spice/element.h"

namespace lcosc::spice {

class Resistor : public Element {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double resistance);
  [[nodiscard]] TransientClass transient_class() const override {
    return TransientClass::TimeInvariantLinear;
  }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;
  [[nodiscard]] double resistance() const { return resistance_; }
  void set_resistance(double r);

 private:
  NodeId a_;
  NodeId b_;
  double resistance_;
};

// Capacitor: open in DC; BE/trapezoidal companion model in transient.
class Capacitor : public Element {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double capacitance,
            double initial_voltage = 0.0);
  // Companion rhs tracks the previous step; the geq matrix part is fixed.
  [[nodiscard]] TransientClass transient_class() const override {
    return TransientClass::TimeVaryingLinear;
  }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  void transient_begin(const Vector* x0) override;
  void transient_commit(const Vector& x, const StampContext& ctx) override;
  void transient_push() override;
  void transient_pop() override;
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;
  [[nodiscard]] double capacitance() const { return capacitance_; }

 private:
  NodeId a_;
  NodeId b_;
  double capacitance_;
  double initial_voltage_;
  // Trapezoidal history (previous accepted voltage and current), plus the
  // adaptive solver's one-deep trial snapshot.
  double v_hist_ = 0.0;
  double i_hist_ = 0.0;
  double v_hist_saved_ = 0.0;
  double i_hist_saved_ = 0.0;
};

// Inductor: carries a branch-current extra variable; 0 V source in DC.
class Inductor : public Element {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double inductance, double initial_current = 0.0);
  [[nodiscard]] int extra_variable_count() const override { return 1; }
  [[nodiscard]] TransientClass transient_class() const override {
    return TransientClass::TimeVaryingLinear;
  }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  void transient_begin(const Vector* x0) override;
  void transient_commit(const Vector& x, const StampContext& ctx) override;
  void transient_push() override;
  void transient_pop() override;
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;
  [[nodiscard]] double inductance() const { return inductance_; }
  [[nodiscard]] double initial_current() const { return initial_current_; }
  // MNA index of the branch-current unknown (valid after finalize()).
  [[nodiscard]] int branch_index() const { return extra_base(); }

 private:
  NodeId a_;
  NodeId b_;
  double inductance_;
  double initial_current_;
  // Trapezoidal history (previous accepted current and branch voltage),
  // plus the adaptive solver's one-deep trial snapshot.
  double i_hist_ = 0.0;
  double v_hist_ = 0.0;
  double i_hist_saved_ = 0.0;
  double v_hist_saved_ = 0.0;
};

// Time-dependent stimulus shapes for independent sources (SPICE SIN and
// PULSE).  In DC analyses the plain `value` is used.
struct SineSpec {
  double offset = 0.0;
  double amplitude = 1.0;
  double frequency = 1e3;  // [Hz]
  double phase_deg = 0.0;
};
struct PulseSpec {
  double v1 = 0.0;      // initial level
  double v2 = 1.0;      // pulsed level
  double delay = 0.0;
  double rise = 1e-9;
  double fall = 1e-9;
  double width = 1e-6;
  double period = 2e-6;
};

// Independent voltage source v(a) - v(b) = value; branch current is an
// extra variable.  `value` may be changed between solves (sweeps).
class VoltageSource : public Element {
 public:
  VoltageSource(std::string name, NodeId positive, NodeId negative, double value);
  [[nodiscard]] int extra_variable_count() const override { return 1; }
  // A plain DC source has a constant transient rhs; SIN/PULSE stimuli
  // re-evaluate the level every step.
  [[nodiscard]] TransientClass transient_class() const override {
    return stimulus_ == Stimulus::Dc ? TransientClass::TimeInvariantLinear
                                     : TransientClass::TimeVaryingLinear;
  }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  // Small-signal stimulus amplitude (0 = AC ground, the default).
  void set_ac_magnitude(double magnitude) { ac_magnitude_ = magnitude; }
  [[nodiscard]] double ac_magnitude() const { return ac_magnitude_; }
  // Positive current flows from + through the source to - (delivering
  // current into the external circuit at the + node is negative here,
  // following SPICE convention).
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;
  [[nodiscard]] double value() const { return value_; }
  void set_value(double v) { value_ = v; }

  // Transient stimulus (DC analyses keep using `value`).
  void set_sine(const SineSpec& spec);
  void set_pulse(const PulseSpec& spec);
  // Instantaneous value at transient time t.
  [[nodiscard]] double value_at(double t) const;

 private:
  enum class Stimulus { Dc, Sine, Pulse };

  NodeId positive_;
  NodeId negative_;
  double value_;
  double ac_magnitude_ = 0.0;
  Stimulus stimulus_ = Stimulus::Dc;
  SineSpec sine_{};
  PulseSpec pulse_{};
};

// Independent current source pushing `value` amps from node `from` to node
// `to` through the source (i.e. into the circuit at `to`).
class CurrentSource : public Element {
 public:
  CurrentSource(std::string name, NodeId from, NodeId to, double value);
  [[nodiscard]] TransientClass transient_class() const override {
    return TransientClass::TimeInvariantLinear;
  }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  void set_ac_magnitude(double magnitude) { ac_magnitude_ = magnitude; }
  [[nodiscard]] double ac_magnitude() const { return ac_magnitude_; }
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;
  [[nodiscard]] double value() const { return value_; }
  void set_value(double v) { value_ = v; }

 private:
  NodeId from_;
  NodeId to_;
  double value_;
  double ac_magnitude_ = 0.0;
};

// Voltage-controlled current source: i(out_p -> out_n) = gm * v(ctl_p, ctl_n).
class Vccs : public Element {
 public:
  Vccs(std::string name, NodeId out_p, NodeId out_n, NodeId ctl_p, NodeId ctl_n, double gm);
  [[nodiscard]] TransientClass transient_class() const override {
    return TransientClass::TimeInvariantLinear;
  }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;
  [[nodiscard]] double gm() const { return gm_; }
  void set_gm(double gm) { gm_ = gm; }

 private:
  NodeId out_p_;
  NodeId out_n_;
  NodeId ctl_p_;
  NodeId ctl_n_;
  double gm_;
};

// Voltage-controlled voltage source: v(out_p)-v(out_n) = gain * v(ctl_p,ctl_n).
class Vcvs : public Element {
 public:
  Vcvs(std::string name, NodeId out_p, NodeId out_n, NodeId ctl_p, NodeId ctl_n, double gain);
  [[nodiscard]] int extra_variable_count() const override { return 1; }
  [[nodiscard]] TransientClass transient_class() const override {
    return TransientClass::TimeInvariantLinear;
  }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;

 private:
  NodeId out_p_;
  NodeId out_n_;
  NodeId ctl_p_;
  NodeId ctl_n_;
  double gain_;
};

// Voltage-controlled switch with a smooth (tanh) Ron/Roff transition to
// keep Newton iterations well conditioned.
class Switch : public Element {
 public:
  struct Params {
    double r_on = 1.0;
    double r_off = 1e9;
    double threshold = 0.0;   // control voltage at which it toggles
    double transition = 1e-3; // width of the smooth transition [V]
  };

  Switch(std::string name, NodeId a, NodeId b, NodeId ctl_p, NodeId ctl_n, Params params);
  [[nodiscard]] bool is_nonlinear() const override { return true; }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;

  // Conductance as a function of control voltage (exposed for tests).
  [[nodiscard]] double conductance_at(double v_control) const;

 private:
  NodeId a_;
  NodeId b_;
  NodeId ctl_p_;
  NodeId ctl_n_;
  Params params_;
};

}  // namespace lcosc::spice
