#include "spice/netlist_parser.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "spice/mutual_coupling.h"

namespace lcosc::spice {
namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw NetlistError("netlist line " + std::to_string(line) + ": " + message);
}

// Split a card into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& card) {
  std::vector<std::string> tokens;
  std::istringstream is(card);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

// key=value option parsing; returns true and fills value if token matches.
bool parse_option(const std::string& token, const std::string& key, double& value) {
  const std::string lower = to_lower(token);
  if (lower.rfind(key + "=", 0) != 0) return false;
  value = parse_engineering_value(token.substr(key.size() + 1));
  return true;
}

struct Card {
  std::string text;
  std::size_t line;
};

struct Subcircuit {
  std::vector<std::string> ports;
  std::vector<Card> body;
};

// Instantiation context: element-name prefix and port-to-node mapping.
struct Scope {
  std::string prefix;                         // "" at top level, "X1." inside
  std::map<std::string, std::string> nodes;   // subckt port -> outer node
};

constexpr int kMaxSubcircuitDepth = 8;

// Case-alias guard: lowercased node name -> first spelling seen.  Node
// names are case-sensitive, so "N1" after "n1" would silently create a
// second, floating node -- the classic netlist typo.  We reject it
// instead of guessing which spelling was meant.
using NodeSpellings = std::map<std::string, std::string>;

void process_cards(Circuit& circuit, const std::vector<Card>& cards,
                   const std::map<std::string, Subcircuit>& subckts, const Scope& scope,
                   NodeSpellings& spellings, int depth);

// Resolve a node token inside a scope: ground is global (any casing of
// "gnd"), ports map to the caller's nodes, everything else becomes a
// scoped internal node.
std::string resolve_node(const Scope& scope, const std::string& token) {
  if (token == "0" || to_lower(token) == "gnd") return "0";
  const auto it = scope.nodes.find(token);
  if (it != scope.nodes.end()) return it->second;
  return scope.prefix + token;
}

void process_card(Circuit& circuit, const Card& card,
                  const std::map<std::string, Subcircuit>& subckts, const Scope& scope,
                  NodeSpellings& spellings, int depth) {
  const std::vector<std::string> t = tokenize(card.text);
  if (t.empty()) return;
  const std::string name = scope.prefix + t[0];
  const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(t[0][0])));

  auto need = [&](std::size_t n, const char* what) {
    if (t.size() < n) fail(card.line, std::string("expected ") + what);
  };
  // Fixed-arity cards take no trailing options; a stray token is a typo
  // (e.g. a value split by a space), not something to silently drop.
  auto exact = [&](std::size_t n, const char* what) {
    if (t.size() != n) fail(card.line, std::string("expected exactly ") + what);
  };
  auto node = [&](std::size_t i) {
    std::string resolved = resolve_node(scope, t[i]);
    const auto [it, inserted] = spellings.emplace(to_lower(resolved), resolved);
    if (!inserted && it->second != resolved) {
      fail(card.line, "node '" + resolved + "' differs only in case from earlier '" +
                          it->second + "'");
    }
    return resolved;
  };

  switch (kind) {
    case 'r': {
      exact(4, "R<name> n1 n2 value");
      circuit.resistor(name, node(1), node(2), parse_engineering_value(t[3]));
      break;
    }
    case 'c': {
      need(4, "C<name> n1 n2 value [ic=]");
      double ic = 0.0;
      for (std::size_t i = 4; i < t.size(); ++i) {
        if (!parse_option(t[i], "ic", ic)) fail(card.line, "unknown option " + t[i]);
      }
      circuit.capacitor(name, node(1), node(2), parse_engineering_value(t[3]), ic);
      break;
    }
    case 'l': {
      need(4, "L<name> n1 n2 value [ic=]");
      double ic = 0.0;
      for (std::size_t i = 4; i < t.size(); ++i) {
        if (!parse_option(t[i], "ic", ic)) fail(card.line, "unknown option " + t[i]);
      }
      circuit.inductor(name, node(1), node(2), parse_engineering_value(t[3]), ic);
      break;
    }
    case 'v': {
      need(4, "V<name> n+ n- value [ac=]");
      auto& src = circuit.voltage_source(name, node(1), node(2), parse_engineering_value(t[3]));
      double ac = 0.0;
      for (std::size_t i = 4; i < t.size(); ++i) {
        if (parse_option(t[i], "ac", ac)) src.set_ac_magnitude(ac);
        else fail(card.line, "unknown option " + t[i]);
      }
      break;
    }
    case 'i': {
      need(4, "I<name> n+ n- value [ac=]");
      auto& src = circuit.current_source(name, node(1), node(2), parse_engineering_value(t[3]));
      double ac = 0.0;
      for (std::size_t i = 4; i < t.size(); ++i) {
        if (parse_option(t[i], "ac", ac)) src.set_ac_magnitude(ac);
        else fail(card.line, "unknown option " + t[i]);
      }
      break;
    }
    case 'd': {
      need(3, "D<name> anode cathode [is=] [n=]");
      DiodeParams params;
      for (std::size_t i = 3; i < t.size(); ++i) {
        double v = 0.0;
        if (parse_option(t[i], "is", v)) params.saturation_current = v;
        else if (parse_option(t[i], "n", v)) params.emission_coefficient = v;
        else fail(card.line, "unknown option " + t[i]);
      }
      circuit.diode(name, node(1), node(2), params);
      break;
    }
    case 'z': {
      need(3, "Z<name> anode cathode [vz=] [is=]");
      ZenerParams params;
      for (std::size_t i = 3; i < t.size(); ++i) {
        double v = 0.0;
        if (parse_option(t[i], "vz", v)) params.breakdown_voltage = v;
        else if (parse_option(t[i], "is", v)) params.junction.saturation_current = v;
        else fail(card.line, "unknown option " + t[i]);
      }
      circuit.add<ZenerDiode>(name, circuit.node_or_create(node(1)),
                              circuit.node_or_create(node(2)), params);
      break;
    }
    case 'm': {
      need(6, "M<name> d g s b nmos|pmos [wl=] [vt=] [kp=] [lambda=] [gamma=]");
      const std::string model = to_lower(t[5]);
      double wl = 10.0;
      for (std::size_t i = 6; i < t.size(); ++i) {
        double v = 0.0;
        if (parse_option(t[i], "wl", v)) wl = v;
      }
      MosfetParams params;
      if (model == "nmos") params = nmos_035um(wl);
      else if (model == "pmos") params = pmos_035um(wl);
      else fail(card.line, "MOSFET model must be nmos or pmos, got " + t[5]);
      for (std::size_t i = 6; i < t.size(); ++i) {
        double v = 0.0;
        if (parse_option(t[i], "wl", v)) continue;  // already applied
        if (parse_option(t[i], "vt", v)) params.threshold_voltage = v;
        else if (parse_option(t[i], "kp", v)) params.transconductance = v;
        else if (parse_option(t[i], "lambda", v)) params.lambda = v;
        else if (parse_option(t[i], "gamma", v)) params.gamma = v;
        else fail(card.line, "unknown option " + t[i]);
      }
      circuit.mosfet(name, node(1), node(2), node(3), node(4), params);
      break;
    }
    case 'g': {
      exact(6, "G<name> out+ out- ctl+ ctl- gm");
      circuit.vccs(name, node(1), node(2), node(3), node(4), parse_engineering_value(t[5]));
      break;
    }
    case 'e': {
      exact(6, "E<name> out+ out- ctl+ ctl- gain");
      circuit.add<Vcvs>(name, circuit.node_or_create(node(1)), circuit.node_or_create(node(2)),
                        circuit.node_or_create(node(3)), circuit.node_or_create(node(4)),
                        parse_engineering_value(t[5]));
      break;
    }
    case 's': {
      need(5, "S<name> n1 n2 ctl+ ctl- [ron=] [roff=] [vt=]");
      Switch::Params params;
      for (std::size_t i = 5; i < t.size(); ++i) {
        double v = 0.0;
        if (parse_option(t[i], "ron", v)) params.r_on = v;
        else if (parse_option(t[i], "roff", v)) params.r_off = v;
        else if (parse_option(t[i], "vt", v)) params.threshold = v;
        else fail(card.line, "unknown option " + t[i]);
      }
      circuit.sw(name, node(1), node(2), node(3), node(4), params);
      break;
    }
    case 'k': {
      exact(4, "K<name> <L1> <L2> <k>");
      auto* l1 = circuit.find_as<Inductor>(scope.prefix + t[1]);
      auto* l2 = circuit.find_as<Inductor>(scope.prefix + t[2]);
      if (l1 == nullptr || l2 == nullptr) {
        fail(card.line, "K element references unknown inductor(s) " + t[1] + ", " + t[2]);
      }
      circuit.add<MutualCoupling>(name, *l1, *l2, parse_engineering_value(t[3]));
      break;
    }
    case 'x': {
      need(3, "X<name> node... <subcircuit>");
      if (depth >= kMaxSubcircuitDepth) fail(card.line, "subcircuit nesting too deep");
      const std::string sub_name = to_lower(t.back());
      const auto it = subckts.find(sub_name);
      if (it == subckts.end()) fail(card.line, "unknown subcircuit " + t.back());
      const Subcircuit& sub = it->second;
      if (t.size() - 2 != sub.ports.size()) {
        fail(card.line, "subcircuit " + t.back() + " expects " +
                            std::to_string(sub.ports.size()) + " ports, got " +
                            std::to_string(t.size() - 2));
      }
      Scope inner;
      inner.prefix = name + ".";
      for (std::size_t p = 0; p < sub.ports.size(); ++p) {
        inner.nodes[sub.ports[p]] = node(p + 1);
      }
      process_cards(circuit, sub.body, subckts, inner, spellings, depth + 1);
      break;
    }
    default:
      fail(card.line, "unknown element kind '" + std::string(1, t[0][0]) + "'");
  }
}

void process_cards(Circuit& circuit, const std::vector<Card>& cards,
                   const std::map<std::string, Subcircuit>& subckts, const Scope& scope,
                   NodeSpellings& spellings, int depth) {
  for (const Card& card : cards) {
    process_card(circuit, card, subckts, scope, spellings, depth);
  }
}

}  // namespace

double parse_engineering_value(const std::string& token) {
  if (token.empty()) throw NetlistError("empty numeric value");
  const std::string lower = to_lower(token);

  std::size_t pos = 0;
  double base = 0.0;
  try {
    base = std::stod(lower, &pos);
  } catch (const std::exception&) {
    throw NetlistError("malformed numeric value: " + token);
  }

  // Suffix: 'meg' must be checked before 'm'.
  double scale = 1.0;
  std::string rest = lower.substr(pos);
  if (rest.rfind("meg", 0) == 0) {
    scale = 1e6;
    rest = rest.substr(3);
  } else if (!rest.empty()) {
    switch (rest.front()) {
      case 'f': scale = 1e-15; rest = rest.substr(1); break;
      case 'p': scale = 1e-12; rest = rest.substr(1); break;
      case 'n': scale = 1e-9; rest = rest.substr(1); break;
      case 'u': scale = 1e-6; rest = rest.substr(1); break;
      case 'm': scale = 1e-3; rest = rest.substr(1); break;
      case 'k': scale = 1e3; rest = rest.substr(1); break;
      case 'g': scale = 1e9; rest = rest.substr(1); break;
      case 't': scale = 1e12; rest = rest.substr(1); break;
      default: break;
    }
  }
  // Whatever remains must be alphabetic unit decoration ("F", "ohm", "a").
  for (const char c : rest) {
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      throw NetlistError("malformed numeric value: " + token);
    }
  }
  return base * scale;
}

std::unique_ptr<Circuit> parse_netlist(const std::string& text) {
  auto circuit = std::make_unique<Circuit>();

  // Assemble logical cards (handling '+' continuations and comments).
  std::vector<Card> top_level;
  std::map<std::string, Subcircuit> subckts;
  Subcircuit* open_subckt = nullptr;
  std::string open_name;

  std::istringstream is(text);
  std::string raw;
  std::size_t line_no = 0;
  bool ended = false;
  while (std::getline(is, raw) && !ended) {
    ++line_no;
    // Strip inline comments (';' style) and trim both ends.  Trailing
    // trim also removes the '\r' a CRLF netlist leaves behind, so DOS
    // line endings parse identically to Unix ones.
    const std::size_t semi = raw.find(';');
    if (semi != std::string::npos) raw.erase(semi);
    const std::size_t first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    raw.erase(0, first);
    raw.erase(raw.find_last_not_of(" \t\r") + 1);
    if (raw.front() == '*') continue;

    if (raw.front() == '.') {
      // Directives match on the exact first token: ".endsx" is a typo,
      // not a ".ends" -- prefix matching would silently swallow it.
      const auto tokens = tokenize(raw);
      const std::string directive = to_lower(tokens.front());
      if (directive == ".subckt") {
        if (open_subckt != nullptr) fail(line_no, "nested .subckt definitions not supported");
        if (tokens.size() < 3) fail(line_no, "expected .subckt <name> <ports...>");
        open_name = to_lower(tokens[1]);
        if (subckts.contains(open_name)) fail(line_no, "duplicate subcircuit " + tokens[1]);
        Subcircuit sub;
        sub.ports.assign(tokens.begin() + 2, tokens.end());
        for (std::size_t p = 1; p < sub.ports.size(); ++p) {
          for (std::size_t q = 0; q < p; ++q) {
            if (to_lower(sub.ports[p]) == to_lower(sub.ports[q])) {
              fail(line_no, "duplicate .subckt port " + sub.ports[p]);
            }
          }
        }
        open_subckt = &subckts.emplace(open_name, std::move(sub)).first->second;
      } else if (directive == ".ends") {
        if (open_subckt == nullptr) fail(line_no, ".ends without .subckt");
        open_subckt = nullptr;
      } else if (directive == ".end") {
        ended = true;
      } else {
        fail(line_no, "unknown directive " + tokens.front());
      }
      continue;
    }

    std::vector<Card>& target = open_subckt != nullptr ? open_subckt->body : top_level;
    if (raw.front() == '+') {
      if (target.empty()) fail(line_no, "continuation with no preceding card");
      target.back().text += " " + raw.substr(1);
      continue;
    }
    target.push_back({raw, line_no});
  }
  if (open_subckt != nullptr) {
    throw NetlistError("unterminated .subckt " + open_name + " (missing .ends)");
  }

  const Scope top_scope{};
  NodeSpellings spellings;
  process_cards(*circuit, top_level, subckts, top_scope, spellings, 0);
  circuit->finalize();
  return circuit;
}

std::unique_ptr<Circuit> parse_netlist_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NetlistError("cannot open netlist file: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_netlist(buffer.str());
}

}  // namespace lcosc::spice
