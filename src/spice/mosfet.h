// Level-1 (square-law) MOSFET with explicit bulk terminal and junction
// bulk diodes.
//
// The explicit bulk matters for this reproduction: the paper's Fig. 11
// output stage switches the PMOS bulk node (Nbulk) to stop the intrinsic
// bulk diode from loading the live oscillator when the supply is lost.
// The model therefore always stamps the two source/drain junction diodes
// against whatever node the bulk is wired to.
#pragma once

#include "spice/diode.h"
#include "spice/element.h"

namespace lcosc::spice {

enum class MosType { Nmos, Pmos };

struct MosfetParams {
  MosType type = MosType::Nmos;
  double threshold_voltage = 0.55;  // Vt0 [V], magnitude
  double transconductance = 1e-4;   // kp * W / L [A/V^2]
  double lambda = 0.01;             // channel-length modulation [1/V]
  double gamma = 0.0;               // body-effect coefficient [sqrt(V)]
  double phi = 0.7;                 // surface potential [V]
  // Output conductance floor (keeps the Jacobian nonsingular in cutoff).
  double gmin = 1e-12;
  // Junction diode parameters for the bulk-source / bulk-drain diodes.
  DiodeParams junction{};
};

// Small-signal linearization around an operating point (exposed for tests).
struct MosfetEval {
  double ids = 0.0;  // channel current, effective drain -> effective source
  double gm = 0.0;
  double gds = 0.0;
  double gmb = 0.0;
  bool swapped = false;   // true if drain/source were exchanged (vds < 0)
  bool saturated = false;
};

class Mosfet : public Element {
 public:
  Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, NodeId bulk,
         MosfetParams params);

  [[nodiscard]] bool is_nonlinear() const override { return true; }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;

  // Channel current with device polarity (positive = conventional current
  // drain -> source for NMOS, source -> drain for PMOS).
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;

  // Total current flowing into the drain terminal (channel + bulk-drain
  // junction), as an ammeter at the drain would read.
  [[nodiscard]] double drain_terminal_current(const Vector& x) const;

  // Evaluate NMOS-normalized square-law equations at the given terminal
  // voltages (already polarity-normalized).  Exposed for unit tests.
  [[nodiscard]] static MosfetEval evaluate_channel(double vd, double vg, double vs, double vb,
                                                   const MosfetParams& params);

  [[nodiscard]] const MosfetParams& params() const { return params_; }

 private:
  // Polarity sign: +1 NMOS, -1 PMOS (all voltages normalized by it).
  [[nodiscard]] double sign() const { return params_.type == MosType::Nmos ? 1.0 : -1.0; }

  NodeId drain_;
  NodeId gate_;
  NodeId source_;
  NodeId bulk_;
  MosfetParams params_;
};

// Convenience parameter builders approximating a 0.35 um process, the
// technology quoted by the paper (I3T80).
[[nodiscard]] MosfetParams nmos_035um(double w_over_l);
[[nodiscard]] MosfetParams pmos_035um(double w_over_l);

}  // namespace lcosc::spice
