// Element interface of the MNA circuit solver.
//
// Unknown vector layout: x[0 .. node_count-2] are voltages of the non-ground
// nodes (node id k has MNA index k-1; node 0 is ground), followed by one
// entry per "extra variable" (branch currents of voltage sources and
// inductors).  Nonlinear elements stamp their companion linearization at
// the current Newton iterate; the DC solver iterates stamps to convergence.
#pragma once

#include <cstddef>
#include <string>

#include "numeric/complex_lu.h"
#include "numeric/matrix.h"

namespace lcosc::spice {

// Node identifier; 0 is always ground.
using NodeId = std::size_t;
constexpr NodeId kGround = 0;

// Integration scheme used when stamping reactive elements in transient.
enum class Integration { BackwardEuler, Trapezoidal };

// How an element's transient stamp depends on the solver state, used by
// run_transient() to partition the circuit at setup:
//  - TimeInvariantLinear: matrix AND rhs entries depend only on
//    (dt, integration) -- both can be stamped once per step size.
//  - TimeVaryingLinear: matrix entries depend only on (dt, integration),
//    but the rhs changes every step (companion history, time-dependent
//    sources) -- the matrix is cacheable, the rhs is not.
//  - Nonlinear: matrix and rhs depend on the current Newton iterate and
//    must be re-stamped every iteration.
enum class TransientClass { TimeInvariantLinear, TimeVaryingLinear, Nonlinear };

// Write access to the MNA matrix and right-hand side during a stamp pass.
// Rows/columns are MNA indices; ground maps to the sentinel -1 and is
// silently discarded, which keeps element stamping code branch-free.
//
// Either target may be null: the transient solver stamps the cached base
// matrix with a matrix-only pass (RHS writes discarded) and rebuilds the
// RHS each step with a vector-only pass, without elements having to split
// their stamp() into two methods.
class Stamper {
 public:
  Stamper(Matrix& a, Vector& b) : a_(&a), b_(&b) {}
  static Stamper matrix_only(Matrix& a) { return Stamper(&a, nullptr); }
  static Stamper rhs_only(Vector& b) { return Stamper(nullptr, &b); }

  // Conductance g between MNA rows n1 and n2 (either may be -1 = ground).
  void conductance(int n1, int n2, double g) {
    add(n1, n1, g);
    add(n2, n2, g);
    add(n1, n2, -g);
    add(n2, n1, -g);
  }

  // Independent current i flowing INTO node n1 and out of node n2.
  void current(int n1, int n2, double i) {
    add_rhs(n1, i);
    add_rhs(n2, -i);
  }

  // Transconductance: current g*(v(cp)-v(cn)) flowing from op into on.
  void transconductance(int op, int on, int cp, int cn, double g) {
    add(op, cp, g);
    add(op, cn, -g);
    add(on, cp, -g);
    add(on, cn, g);
  }

  // Raw matrix / rhs entries (for branch-current rows of sources).
  void add(int row, int col, double v) {
    if (a_ == nullptr || row < 0 || col < 0) return;
    (*a_)(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += v;
  }
  void add_rhs(int row, double v) {
    if (b_ == nullptr || row < 0) return;
    (*b_)[static_cast<std::size_t>(row)] += v;
  }

 private:
  Stamper(Matrix* a, Vector* b) : a_(a), b_(b) {}

  Matrix* a_;
  Vector* b_;
};

// Context passed to stamp(): where we are in time (transient) and the
// global source/gmin continuation factors used by the DC solver.
struct StampContext {
  // Current iterate of the unknown vector.
  const Vector* x = nullptr;
  // Previous accepted transient solution (nullptr during DC analysis).
  const Vector* x_prev = nullptr;
  double time = 0.0;
  double dt = 0.0;  // 0 during DC analysis
  Integration integration = Integration::BackwardEuler;
  // Multiplier applied by source-stepping continuation (1 = full sources).
  double source_scale = 1.0;
  // Extra conductance from every node to ground (gmin stepping).
  double gmin = 0.0;

  [[nodiscard]] bool is_dc() const { return dt == 0.0; }
};

// Complex-valued analog of Stamper for small-signal AC stamping.
class AcStamper {
 public:
  AcStamper(ComplexMatrix& a, ComplexVector& b) : a_(a), b_(b) {}

  void admittance(int n1, int n2, Complex y) {
    add(n1, n1, y);
    add(n2, n2, y);
    add(n1, n2, -y);
    add(n2, n1, -y);
  }
  void current(int n1, int n2, Complex i) {
    add_rhs(n1, i);
    add_rhs(n2, -i);
  }
  void transadmittance(int op, int on, int cp, int cn, Complex y) {
    add(op, cp, y);
    add(op, cn, -y);
    add(on, cp, -y);
    add(on, cn, y);
  }
  void add(int row, int col, Complex v) {
    if (row < 0 || col < 0) return;
    a_(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += v;
  }
  void add_rhs(int row, Complex v) {
    if (row < 0) return;
    b_[static_cast<std::size_t>(row)] += v;
  }

 private:
  ComplexMatrix& a_;
  ComplexVector& b_;
};

// Base class of all circuit elements.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}
  virtual ~Element() = default;
  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  // Number of extra MNA variables (branch currents) this element needs.
  [[nodiscard]] virtual int extra_variable_count() const { return 0; }

  // Called once by the circuit when MNA indices are assigned.
  virtual void set_extra_variable_base(int base) { extra_base_ = base; }

  [[nodiscard]] virtual bool is_nonlinear() const { return false; }

  // Transient stamp dependence (see TransientClass).  The conservative
  // default keeps unknown linear elements on the per-step rhs path;
  // nonlinear elements are always re-stamped per Newton iteration.
  [[nodiscard]] virtual TransientClass transient_class() const {
    return is_nonlinear() ? TransientClass::Nonlinear : TransientClass::TimeVaryingLinear;
  }

  // Stamp the (linearized) element into the MNA system.
  virtual void stamp(Stamper& s, const StampContext& ctx) const = 0;

  // Stamp the small-signal linearization at the DC operating point `dc_op`
  // into the complex AC system at angular frequency `omega`.  Throws
  // NetlistError for elements without an AC model.
  virtual void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const;

  // Transient state hooks (trapezoidal integration).  `transient_begin`
  // initializes the element's history from the initial solution (nullptr
  // = use explicit initial conditions); `transient_commit` is called once
  // per accepted time step with the converged solution.
  virtual void transient_begin(const Vector* x0) { (void)x0; }
  virtual void transient_commit(const Vector& x, const StampContext& ctx) {
    (void)x;
    (void)ctx;
  }

  // Speculative-step support for the adaptive solver: `transient_push`
  // snapshots the committed history (one level deep), `transient_pop`
  // restores it after a rejected trial step.  Elements without history
  // need not override.  A push may be followed by any number of commits
  // before the matching pop; an accepted trial simply abandons the
  // snapshot (the next push overwrites it).
  virtual void transient_push() {}
  virtual void transient_pop() {}

  // Current through the element (positive from its first to second
  // terminal) evaluated at solution x; default 0 for elements where the
  // notion does not apply.
  [[nodiscard]] virtual double branch_current(const Vector& x, const StampContext& ctx) const {
    (void)x;
    (void)ctx;
    return 0.0;
  }

 protected:
  [[nodiscard]] int extra_base() const { return extra_base_; }

  // Helpers shared by concrete elements.
  static int mna_index(NodeId node) { return node == kGround ? -1 : static_cast<int>(node) - 1; }
  static double node_voltage(const Vector& x, NodeId node) {
    return node == kGround ? 0.0 : x[node - 1];
  }

 private:
  std::string name_;
  int extra_base_ = -1;
};

}  // namespace lcosc::spice
