// Netlist container: owns nodes and elements, assigns MNA indices.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/diode.h"
#include "spice/element.h"
#include "spice/elements_linear.h"
#include "spice/mosfet.h"

namespace lcosc::spice {

class Circuit {
 public:
  Circuit() { node_names_.push_back("0"); }

  // --- nodes ---------------------------------------------------------------

  [[nodiscard]] static constexpr NodeId ground() { return kGround; }

  // Create a named node (throws NetlistError if the name exists).
  NodeId add_node(const std::string& name);

  // Get an existing node's id (throws NetlistError if unknown).
  [[nodiscard]] NodeId node(const std::string& name) const;

  // Create-or-get by name; "0" and "gnd" map to ground.
  NodeId node_or_create(const std::string& name);

  [[nodiscard]] bool has_node(const std::string& name) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  // Node count including ground.
  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }

  // --- elements --------------------------------------------------------------

  // Generic emplace; returns a reference valid for the circuit's lifetime.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto element = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *element;
    register_element(std::move(element));
    return ref;
  }

  // Schematic-style factories (all take node *names*).
  Resistor& resistor(const std::string& name, const std::string& a, const std::string& b,
                     double ohms);
  Capacitor& capacitor(const std::string& name, const std::string& a, const std::string& b,
                       double farads, double initial_voltage = 0.0);
  Inductor& inductor(const std::string& name, const std::string& a, const std::string& b,
                     double henries, double initial_current = 0.0);
  VoltageSource& voltage_source(const std::string& name, const std::string& positive,
                                const std::string& negative, double volts);
  CurrentSource& current_source(const std::string& name, const std::string& from,
                                const std::string& to, double amps);
  Diode& diode(const std::string& name, const std::string& anode, const std::string& cathode,
               DiodeParams params = {});
  Mosfet& mosfet(const std::string& name, const std::string& drain, const std::string& gate,
                 const std::string& source, const std::string& bulk, MosfetParams params);
  Vccs& vccs(const std::string& name, const std::string& out_p, const std::string& out_n,
             const std::string& ctl_p, const std::string& ctl_n, double gm);
  Switch& sw(const std::string& name, const std::string& a, const std::string& b,
             const std::string& ctl_p, const std::string& ctl_n, Switch::Params params);

  [[nodiscard]] const std::vector<std::unique_ptr<Element>>& elements() const {
    return elements_;
  }

  // Find an element by name; nullptr if absent.
  [[nodiscard]] Element* find(const std::string& name) const;

  template <typename T>
  [[nodiscard]] T* find_as(const std::string& name) const {
    return dynamic_cast<T*>(find(name));
  }

  [[nodiscard]] bool is_nonlinear() const;

  // --- MNA layout --------------------------------------------------------------

  // Assign extra-variable indices.  Called automatically by the solvers;
  // idempotent unless elements were added since.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  // Unknown count: (node_count - 1) voltages + extra variables.
  [[nodiscard]] std::size_t unknown_count() const;

  // Voltage of `node` in an unknown vector (0 for ground).
  [[nodiscard]] static double voltage(const Vector& x, NodeId node) {
    return node == kGround ? 0.0 : x[node - 1];
  }

 private:
  void register_element(std::unique_ptr<Element> element);

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<std::unique_ptr<Element>> elements_;
  std::unordered_map<std::string, std::size_t> element_index_;
  std::size_t extra_variable_count_ = 0;
  bool finalized_ = false;
};

}  // namespace lcosc::spice
