#include "spice/elements_linear.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace lcosc::spice {

// --- Resistor ---------------------------------------------------------------

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Element(std::move(name)), a_(a), b_(b), resistance_(resistance) {
  LCOSC_REQUIRE(resistance > 0.0, "resistance must be positive");
}

void Resistor::set_resistance(double r) {
  LCOSC_REQUIRE(r > 0.0, "resistance must be positive");
  resistance_ = r;
}

void Resistor::stamp(Stamper& s, const StampContext&) const {
  s.conductance(mna_index(a_), mna_index(b_), 1.0 / resistance_);
}

double Resistor::branch_current(const Vector& x, const StampContext&) const {
  return (node_voltage(x, a_) - node_voltage(x, b_)) / resistance_;
}

// --- Capacitor ---------------------------------------------------------------

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance,
                     double initial_voltage)
    : Element(std::move(name)),
      a_(a),
      b_(b),
      capacitance_(capacitance),
      initial_voltage_(initial_voltage) {
  LCOSC_REQUIRE(capacitance > 0.0, "capacitance must be positive");
}

void Capacitor::stamp(Stamper& s, const StampContext& ctx) const {
  if (ctx.is_dc()) return;  // open circuit in DC
  const int a = mna_index(a_);
  const int b = mna_index(b_);
  if (ctx.integration == Integration::BackwardEuler) {
    const double v_prev =
        ctx.x_prev ? (node_voltage(*ctx.x_prev, a_) - node_voltage(*ctx.x_prev, b_))
                   : initial_voltage_;
    const double geq = capacitance_ / ctx.dt;
    s.conductance(a, b, geq);
    s.current(a, b, geq * v_prev);
  } else {
    // Trapezoidal companion: i = geq (v - v_hist) - i_hist with
    // geq = 2C/dt; history is kept by transient_begin/transient_commit.
    const double geq = 2.0 * capacitance_ / ctx.dt;
    s.conductance(a, b, geq);
    s.current(a, b, geq * v_hist_ + i_hist_);
  }
}

void Capacitor::transient_begin(const Vector* x0) {
  v_hist_ = x0 ? (node_voltage(*x0, a_) - node_voltage(*x0, b_)) : initial_voltage_;
  i_hist_ = 0.0;
}

void Capacitor::transient_commit(const Vector& x, const StampContext& ctx) {
  if (ctx.integration != Integration::Trapezoidal) return;
  const double v_now = node_voltage(x, a_) - node_voltage(x, b_);
  const double geq = 2.0 * capacitance_ / ctx.dt;
  i_hist_ = geq * (v_now - v_hist_) - i_hist_;
  v_hist_ = v_now;
}

void Capacitor::transient_push() {
  v_hist_saved_ = v_hist_;
  i_hist_saved_ = i_hist_;
}

void Capacitor::transient_pop() {
  v_hist_ = v_hist_saved_;
  i_hist_ = i_hist_saved_;
}

double Capacitor::branch_current(const Vector& x, const StampContext& ctx) const {
  if (ctx.is_dc()) return 0.0;
  const double v_now = node_voltage(x, a_) - node_voltage(x, b_);
  const double v_prev =
      ctx.x_prev ? (node_voltage(*ctx.x_prev, a_) - node_voltage(*ctx.x_prev, b_))
                 : initial_voltage_;
  const double geq = (ctx.integration == Integration::BackwardEuler ? 1.0 : 2.0) *
                     capacitance_ / ctx.dt;
  return geq * (v_now - v_prev);
}

// --- Inductor ----------------------------------------------------------------

Inductor::Inductor(std::string name, NodeId a, NodeId b, double inductance,
                   double initial_current)
    : Element(std::move(name)),
      a_(a),
      b_(b),
      inductance_(inductance),
      initial_current_(initial_current) {
  LCOSC_REQUIRE(inductance > 0.0, "inductance must be positive");
}

void Inductor::stamp(Stamper& s, const StampContext& ctx) const {
  const int a = mna_index(a_);
  const int b = mna_index(b_);
  const int k = extra_base();
  LCOSC_REQUIRE(k >= 0, "inductor not registered with a circuit");

  // Branch current leaves node a and enters node b.
  s.add(a, k, 1.0);
  s.add(b, k, -1.0);

  if (ctx.is_dc()) {
    // Short circuit: v_a - v_b = 0.
    s.add(k, a, 1.0);
    s.add(k, b, -1.0);
    return;
  }
  if (ctx.integration == Integration::BackwardEuler) {
    const double i_prev = ctx.x_prev ? (*ctx.x_prev)[static_cast<std::size_t>(k)]
                                     : initial_current_;
    // Backward-Euler branch equation: v - (L/dt) i = -(L/dt) i_prev.
    const double leq = inductance_ / ctx.dt;
    s.add(k, a, 1.0);
    s.add(k, b, -1.0);
    s.add(k, k, -leq);
    s.add_rhs(k, -leq * i_prev);
  } else {
    // Trapezoidal branch equation:
    //   v - (2L/dt) i = -(2L/dt) i_hist - v_hist.
    const double leq = 2.0 * inductance_ / ctx.dt;
    s.add(k, a, 1.0);
    s.add(k, b, -1.0);
    s.add(k, k, -leq);
    s.add_rhs(k, -leq * i_hist_ - v_hist_);
  }
}

void Inductor::transient_begin(const Vector* x0) {
  const int k = extra_base();
  i_hist_ = (x0 && k >= 0) ? (*x0)[static_cast<std::size_t>(k)] : initial_current_;
  // Both start modes begin with zero branch voltage: a DC solution pins
  // the inductor to 0 V, and an IC start has no better estimate.
  v_hist_ = 0.0;
}

void Inductor::transient_commit(const Vector& x, const StampContext& ctx) {
  if (ctx.integration != Integration::Trapezoidal) return;
  const int k = extra_base();
  i_hist_ = x[static_cast<std::size_t>(k)];
  v_hist_ = node_voltage(x, a_) - node_voltage(x, b_);
}

void Inductor::transient_push() {
  i_hist_saved_ = i_hist_;
  v_hist_saved_ = v_hist_;
}

void Inductor::transient_pop() {
  i_hist_ = i_hist_saved_;
  v_hist_ = v_hist_saved_;
}

double Inductor::branch_current(const Vector& x, const StampContext&) const {
  const int k = extra_base();
  LCOSC_REQUIRE(k >= 0, "inductor not registered with a circuit");
  return x[static_cast<std::size_t>(k)];
}

// --- VoltageSource -----------------------------------------------------------

VoltageSource::VoltageSource(std::string name, NodeId positive, NodeId negative, double value)
    : Element(std::move(name)), positive_(positive), negative_(negative), value_(value) {}

void VoltageSource::set_sine(const SineSpec& spec) {
  LCOSC_REQUIRE(spec.frequency > 0.0, "sine frequency must be positive");
  stimulus_ = Stimulus::Sine;
  sine_ = spec;
}

void VoltageSource::set_pulse(const PulseSpec& spec) {
  LCOSC_REQUIRE(spec.period > 0.0 && spec.rise > 0.0 && spec.fall > 0.0,
                "pulse timing parameters must be positive");
  LCOSC_REQUIRE(spec.rise + spec.width + spec.fall <= spec.period,
                "pulse edges and width must fit inside the period");
  stimulus_ = Stimulus::Pulse;
  pulse_ = spec;
}

double VoltageSource::value_at(double t) const {
  switch (stimulus_) {
    case Stimulus::Dc:
      return value_;
    case Stimulus::Sine:
      return sine_.offset +
             sine_.amplitude * std::sin(2.0 * std::numbers::pi *
                                        (sine_.frequency * t + sine_.phase_deg / 360.0));
    case Stimulus::Pulse: {
      if (t < pulse_.delay) return pulse_.v1;
      const double phase = std::fmod(t - pulse_.delay, pulse_.period);
      if (phase < pulse_.rise) return pulse_.v1 + (pulse_.v2 - pulse_.v1) * phase / pulse_.rise;
      if (phase < pulse_.rise + pulse_.width) return pulse_.v2;
      if (phase < pulse_.rise + pulse_.width + pulse_.fall) {
        const double f = (phase - pulse_.rise - pulse_.width) / pulse_.fall;
        return pulse_.v2 + (pulse_.v1 - pulse_.v2) * f;
      }
      return pulse_.v1;
    }
  }
  return value_;
}

void VoltageSource::stamp(Stamper& s, const StampContext& ctx) const {
  const int p = mna_index(positive_);
  const int n = mna_index(negative_);
  const int k = extra_base();
  LCOSC_REQUIRE(k >= 0, "voltage source not registered with a circuit");
  s.add(p, k, 1.0);
  s.add(n, k, -1.0);
  s.add(k, p, 1.0);
  s.add(k, n, -1.0);
  const double level = ctx.is_dc() ? value_ : value_at(ctx.time);
  s.add_rhs(k, level * ctx.source_scale);
}

double VoltageSource::branch_current(const Vector& x, const StampContext&) const {
  const int k = extra_base();
  LCOSC_REQUIRE(k >= 0, "voltage source not registered with a circuit");
  // SPICE convention: positive current flows into the + terminal.
  return x[static_cast<std::size_t>(k)];
}

// --- CurrentSource -----------------------------------------------------------

CurrentSource::CurrentSource(std::string name, NodeId from, NodeId to, double value)
    : Element(std::move(name)), from_(from), to_(to), value_(value) {}

void CurrentSource::stamp(Stamper& s, const StampContext& ctx) const {
  s.current(mna_index(to_), mna_index(from_), value_ * ctx.source_scale);
}

double CurrentSource::branch_current(const Vector&, const StampContext& ctx) const {
  return value_ * ctx.source_scale;
}

// --- Vccs ---------------------------------------------------------------------

Vccs::Vccs(std::string name, NodeId out_p, NodeId out_n, NodeId ctl_p, NodeId ctl_n, double gm)
    : Element(std::move(name)), out_p_(out_p), out_n_(out_n), ctl_p_(ctl_p), ctl_n_(ctl_n),
      gm_(gm) {}

void Vccs::stamp(Stamper& s, const StampContext&) const {
  s.transconductance(mna_index(out_p_), mna_index(out_n_), mna_index(ctl_p_), mna_index(ctl_n_),
                     gm_);
}

double Vccs::branch_current(const Vector& x, const StampContext&) const {
  return gm_ * (node_voltage(x, ctl_p_) - node_voltage(x, ctl_n_));
}

// --- Vcvs ---------------------------------------------------------------------

Vcvs::Vcvs(std::string name, NodeId out_p, NodeId out_n, NodeId ctl_p, NodeId ctl_n, double gain)
    : Element(std::move(name)), out_p_(out_p), out_n_(out_n), ctl_p_(ctl_p), ctl_n_(ctl_n),
      gain_(gain) {}

void Vcvs::stamp(Stamper& s, const StampContext&) const {
  const int p = mna_index(out_p_);
  const int n = mna_index(out_n_);
  const int cp = mna_index(ctl_p_);
  const int cn = mna_index(ctl_n_);
  const int k = extra_base();
  LCOSC_REQUIRE(k >= 0, "VCVS not registered with a circuit");
  s.add(p, k, 1.0);
  s.add(n, k, -1.0);
  // v(out_p) - v(out_n) - gain * (v(ctl_p) - v(ctl_n)) = 0.
  s.add(k, p, 1.0);
  s.add(k, n, -1.0);
  s.add(k, cp, -gain_);
  s.add(k, cn, gain_);
}

double Vcvs::branch_current(const Vector& x, const StampContext&) const {
  const int k = extra_base();
  LCOSC_REQUIRE(k >= 0, "VCVS not registered with a circuit");
  return x[static_cast<std::size_t>(k)];
}

// --- Switch ---------------------------------------------------------------------

Switch::Switch(std::string name, NodeId a, NodeId b, NodeId ctl_p, NodeId ctl_n, Params params)
    : Element(std::move(name)), a_(a), b_(b), ctl_p_(ctl_p), ctl_n_(ctl_n), params_(params) {
  LCOSC_REQUIRE(params_.r_on > 0.0 && params_.r_off > params_.r_on,
                "switch requires 0 < r_on < r_off");
  LCOSC_REQUIRE(params_.transition > 0.0, "switch transition width must be positive");
}

double Switch::conductance_at(double v_control) const {
  const double g_on = 1.0 / params_.r_on;
  const double g_off = 1.0 / params_.r_off;
  const double sigma =
      0.5 * (1.0 + std::tanh((v_control - params_.threshold) / params_.transition));
  return g_off + (g_on - g_off) * sigma;
}

void Switch::stamp(Stamper& s, const StampContext& ctx) const {
  LCOSC_REQUIRE(ctx.x != nullptr, "switch stamping needs the current iterate");
  const Vector& x = *ctx.x;
  const double vc = node_voltage(x, ctl_p_) - node_voltage(x, ctl_n_);
  const double vab = node_voltage(x, a_) - node_voltage(x, b_);

  const double g = conductance_at(vc);
  // dg/dvc for the Newton cross term.
  const double g_on = 1.0 / params_.r_on;
  const double g_off = 1.0 / params_.r_off;
  const double th = std::tanh((vc - params_.threshold) / params_.transition);
  const double dgdvc = (g_on - g_off) * 0.5 * (1.0 - th * th) / params_.transition;
  const double k = dgdvc * vab;

  const int a = mna_index(a_);
  const int b = mna_index(b_);
  s.conductance(a, b, g);
  s.transconductance(a, b, mna_index(ctl_p_), mna_index(ctl_n_), k);
  // Remove the constant part of the linearization: i = g*vab + k*(vc - vc0).
  s.current(a, b, k * vc);
}

double Switch::branch_current(const Vector& x, const StampContext&) const {
  const double vc = node_voltage(x, ctl_p_) - node_voltage(x, ctl_n_);
  const double vab = node_voltage(x, a_) - node_voltage(x, b_);
  return conductance_at(vc) * vab;
}


// --- small-signal AC stamps ----------------------------------------------------

void Resistor::stamp_ac(AcStamper& s, double, const Vector&) const {
  s.admittance(mna_index(a_), mna_index(b_), Complex{1.0 / resistance_, 0.0});
}

void Capacitor::stamp_ac(AcStamper& s, double omega, const Vector&) const {
  s.admittance(mna_index(a_), mna_index(b_), Complex{0.0, omega * capacitance_});
}

void Inductor::stamp_ac(AcStamper& s, double omega, const Vector&) const {
  const int a = mna_index(a_);
  const int b = mna_index(b_);
  const int k = extra_base();
  LCOSC_REQUIRE(k >= 0, "inductor not registered with a circuit");
  s.add(a, k, Complex{1.0, 0.0});
  s.add(b, k, Complex{-1.0, 0.0});
  // Branch equation: v - j w L i = 0.
  s.add(k, a, Complex{1.0, 0.0});
  s.add(k, b, Complex{-1.0, 0.0});
  s.add(k, k, Complex{0.0, -omega * inductance_});
}

void VoltageSource::stamp_ac(AcStamper& s, double, const Vector&) const {
  const int p = mna_index(positive_);
  const int n = mna_index(negative_);
  const int k = extra_base();
  LCOSC_REQUIRE(k >= 0, "voltage source not registered with a circuit");
  s.add(p, k, Complex{1.0, 0.0});
  s.add(n, k, Complex{-1.0, 0.0});
  s.add(k, p, Complex{1.0, 0.0});
  s.add(k, n, Complex{-1.0, 0.0});
  s.add_rhs(k, Complex{ac_magnitude_, 0.0});
}

void CurrentSource::stamp_ac(AcStamper& s, double, const Vector&) const {
  s.current(mna_index(to_), mna_index(from_), Complex{ac_magnitude_, 0.0});
}

void Vccs::stamp_ac(AcStamper& s, double, const Vector&) const {
  s.transadmittance(mna_index(out_p_), mna_index(out_n_), mna_index(ctl_p_),
                    mna_index(ctl_n_), Complex{gm_, 0.0});
}

void Vcvs::stamp_ac(AcStamper& s, double, const Vector&) const {
  const int p = mna_index(out_p_);
  const int n = mna_index(out_n_);
  const int k = extra_base();
  LCOSC_REQUIRE(k >= 0, "VCVS not registered with a circuit");
  s.add(p, k, Complex{1.0, 0.0});
  s.add(n, k, Complex{-1.0, 0.0});
  s.add(k, p, Complex{1.0, 0.0});
  s.add(k, n, Complex{-1.0, 0.0});
  s.add(k, mna_index(ctl_p_), Complex{-gain_, 0.0});
  s.add(k, mna_index(ctl_n_), Complex{gain_, 0.0});
}

void Switch::stamp_ac(AcStamper& s, double, const Vector& dc_op) const {
  // Linearized at the DC control voltage (the cross term is a second-order
  // effect for a switch parked on or off).
  const double vc = node_voltage(dc_op, ctl_p_) - node_voltage(dc_op, ctl_n_);
  s.admittance(mna_index(a_), mna_index(b_), Complex{conductance_at(vc), 0.0});
}

}  // namespace lcosc::spice
