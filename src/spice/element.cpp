#include "spice/element.h"

#include "common/error.h"

namespace lcosc::spice {

void Element::stamp_ac(AcStamper&, double, const Vector&) const {
  throw NetlistError("element '" + name() + "' has no small-signal AC model");
}

}  // namespace lcosc::spice
