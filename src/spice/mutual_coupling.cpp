#include "spice/mutual_coupling.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::spice {

MutualCoupling::MutualCoupling(std::string name, Inductor& first, Inductor& second,
                               double coupling)
    : Element(std::move(name)),
      first_(first),
      second_(second),
      coupling_(coupling),
      mutual_(coupling * std::sqrt(first.inductance() * second.inductance())) {
  LCOSC_REQUIRE(&first != &second, "cannot couple an inductor to itself");
  LCOSC_REQUIRE(std::abs(coupling) < 1.0, "coupling magnitude must be below 1");
}

void MutualCoupling::stamp(Stamper& s, const StampContext& ctx) const {
  if (ctx.is_dc()) return;  // both inductors are shorts; M plays no role
  const int k1 = first_.branch_index();
  const int k2 = second_.branch_index();
  LCOSC_REQUIRE(k1 >= 0 && k2 >= 0, "coupled inductors not registered with a circuit");

  if (ctx.integration == Integration::BackwardEuler) {
    const double meq = mutual_ / ctx.dt;
    const double i1_prev =
        ctx.x_prev ? (*ctx.x_prev)[static_cast<std::size_t>(k1)] : first_.initial_current();
    const double i2_prev =
        ctx.x_prev ? (*ctx.x_prev)[static_cast<std::size_t>(k2)] : second_.initial_current();
    // v1 gains -M/dt (i2 - i2_prev); v2 symmetric.
    s.add(k1, k2, -meq);
    s.add_rhs(k1, -meq * i2_prev);
    s.add(k2, k1, -meq);
    s.add_rhs(k2, -meq * i1_prev);
  } else {
    const double meq = 2.0 * mutual_ / ctx.dt;
    s.add(k1, k2, -meq);
    s.add_rhs(k1, -meq * i2_hist_);
    s.add(k2, k1, -meq);
    s.add_rhs(k2, -meq * i1_hist_);
  }
}

void MutualCoupling::stamp_ac(AcStamper& s, double omega, const Vector&) const {
  const int k1 = first_.branch_index();
  const int k2 = second_.branch_index();
  LCOSC_REQUIRE(k1 >= 0 && k2 >= 0, "coupled inductors not registered with a circuit");
  // Branch equations gain -j w M times the partner current.
  s.add(k1, k2, Complex{0.0, -omega * mutual_});
  s.add(k2, k1, Complex{0.0, -omega * mutual_});
}

void MutualCoupling::transient_begin(const Vector* x0) {
  const int k1 = first_.branch_index();
  const int k2 = second_.branch_index();
  i1_hist_ = (x0 && k1 >= 0) ? (*x0)[static_cast<std::size_t>(k1)] : first_.initial_current();
  i2_hist_ = (x0 && k2 >= 0) ? (*x0)[static_cast<std::size_t>(k2)] : second_.initial_current();
}

void MutualCoupling::transient_commit(const Vector& x, const StampContext& ctx) {
  if (ctx.integration != Integration::Trapezoidal) return;
  i1_hist_ = x[static_cast<std::size_t>(first_.branch_index())];
  i2_hist_ = x[static_cast<std::size_t>(second_.branch_index())];
}

void MutualCoupling::transient_push() {
  i1_hist_saved_ = i1_hist_;
  i2_hist_saved_ = i2_hist_;
}

void MutualCoupling::transient_pop() {
  i1_hist_ = i1_hist_saved_;
  i2_hist_ = i2_hist_saved_;
}

}  // namespace lcosc::spice
