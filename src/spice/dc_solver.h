// DC operating-point analysis: companion-model Newton iteration with
// gmin stepping and source stepping continuation.
#pragma once

#include <optional>
#include <string>

#include "spice/circuit.h"

namespace lcosc::spice {

struct DcOptions {
  int max_iterations = 150;
  // Convergence thresholds on the Newton update (SPICE-style).
  double voltage_abstol = 1e-6;
  double current_abstol = 1e-9;
  double reltol = 1e-4;
  // Per-iteration clamp on voltage-variable updates [V]; tames exponential
  // junctions far from the solution.
  double voltage_step_limit = 0.5;
  // Floor gmin applied from every node to ground in all passes.
  double gmin_floor = 1e-12;
  // gmin stepping schedule: start value and per-step division factor.
  double gmin_start = 1e-3;
  double gmin_factor = 10.0;
  // Source stepping: number of ramp points if gmin stepping also fails.
  int source_steps = 20;
};

struct DcSolution {
  bool converged = false;
  int iterations = 0;           // Newton iterations of the final pass
  int continuation_passes = 0;  // extra gmin/source passes needed
  Vector x;                     // node voltages then branch currents

  // Voltage of a node in this solution (0 for ground).
  [[nodiscard]] double voltage(const Circuit& circuit, const std::string& node_name) const;
  [[nodiscard]] double voltage(NodeId node) const;
};

// Solve the DC operating point.  `initial_guess` (if given) seeds Newton,
// which is how sweeps achieve continuation.  Non-convergence is reported
// in the result, not thrown, so sweeps can skip isolated bad points.
[[nodiscard]] DcSolution solve_dc(Circuit& circuit, const DcOptions& options = {},
                                  const std::optional<Vector>& initial_guess = std::nullopt);

}  // namespace lcosc::spice
