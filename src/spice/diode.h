// Exponential junction diode with limited-exponential linearization.
//
// The limited exponential (first-order continuation above a critical
// voltage) keeps Newton iterates finite no matter how far the initial
// guess is from the solution; this matters for the floating-supply sweeps
// where bulk diodes see multi-volt overdrive.
#pragma once

#include "spice/element.h"

namespace lcosc::spice {

struct DiodeParams {
  double saturation_current = 1e-14;  // Is [A]
  double emission_coefficient = 1.0;  // n
  double temperature_voltage = 0.02585;  // kT/q [V]
  // Minimum parallel conductance for convergence.
  double gmin = 1e-12;
  // Above this forward voltage the exponential is linearized.
  double limit_voltage = 0.9;
};

// Junction evaluation shared with the MOSFET bulk diodes.
struct JunctionEval {
  double current = 0.0;
  double conductance = 0.0;
};
[[nodiscard]] JunctionEval evaluate_junction(double v, const DiodeParams& params);

// Zener/avalanche diode: normal forward junction plus a symmetric
// exponential breakdown at -breakdown_voltage.  Used for ESD power-clamp
// modeling in the floating-supply testbenches.
struct ZenerParams {
  DiodeParams junction{};
  double breakdown_voltage = 5.5;  // |Vz| [V]
  // Slope of the breakdown knee (effective thermal voltage) [V].
  double breakdown_slope = 0.05;
  // Current flowing at the nominal breakdown voltage (knee current); the
  // hard clamp sits a few slope-units beyond Vz.
  double breakdown_knee_current = 1e-5;
};

class Diode : public Element {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params = {});
  [[nodiscard]] bool is_nonlinear() const override { return true; }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;
  [[nodiscard]] const DiodeParams& params() const { return params_; }

 private:
  NodeId anode_;
  NodeId cathode_;
  DiodeParams params_;
};


class ZenerDiode : public Element {
 public:
  ZenerDiode(std::string name, NodeId anode, NodeId cathode, ZenerParams params = {});
  [[nodiscard]] bool is_nonlinear() const override { return true; }
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void stamp_ac(AcStamper& s, double omega, const Vector& dc_op) const override;
  [[nodiscard]] double branch_current(const Vector& x, const StampContext& ctx) const override;
  [[nodiscard]] const ZenerParams& params() const { return params_; }

  // Combined forward + breakdown characteristic (exposed for tests).
  [[nodiscard]] JunctionEval evaluate(double v) const;

 private:
  NodeId anode_;
  NodeId cathode_;
  ZenerParams params_;
};

}  // namespace lcosc::spice
