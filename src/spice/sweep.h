// DC sweep with solution continuation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "spice/dc_solver.h"

namespace lcosc::spice {

struct SweepPoint {
  double value = 0.0;   // swept source value
  bool converged = false;
  DcSolution solution;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  [[nodiscard]] std::size_t converged_count() const;
};

// Sweep an independent voltage source through `values` (in order), seeding
// each point's Newton iteration with the previous solution.  The source's
// original value is restored afterwards.
//
// The DC sweep is intentionally serial: the continuation chain is a
// point-to-point data dependency (and the swept source mutates the shared
// circuit), so it cannot be split across workers without changing which
// Newton basins hard nonlinear points land in.  Independent-point sweeps
// (AC / tank impedance) parallelize instead -- see spice::ac_sweep and
// common/parallel.h.
[[nodiscard]] SweepResult dc_sweep(Circuit& circuit, VoltageSource& source,
                                   const std::vector<double>& values,
                                   const DcOptions& options = {});

// Same for a current source.
[[nodiscard]] SweepResult dc_sweep(Circuit& circuit, CurrentSource& source,
                                   const std::vector<double>& values,
                                   const DcOptions& options = {});

// Evenly spaced sweep grid, inclusive of both ends.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

// Logarithmically spaced grid, inclusive of both (positive) ends.
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t count);

}  // namespace lcosc::spice
