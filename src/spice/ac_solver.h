// Small-signal AC analysis: linearize every element at a DC operating
// point and solve the complex MNA system per frequency.
//
// Used to characterize the external resonance network (impedance curve,
// resonance peak, bandwidth-derived Q) and to validate the macro-model
// tank arithmetic against the transistor-level view.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/complex_lu.h"
#include "spice/circuit.h"

namespace lcosc::spice {

struct AcPoint {
  double frequency = 0.0;  // [Hz]
  bool ok = false;
  ComplexVector x;

  [[nodiscard]] Complex voltage(const Circuit& circuit, const std::string& node) const;
  [[nodiscard]] Complex voltage(NodeId node) const;
};

// Solve the small-signal response at each frequency.  `dc_op` is the
// operating point the nonlinear elements are linearized at (pass an
// all-zero vector for a linear circuit).  Frequency points are solved in
// parallel (workers: 0 = default_worker_count(), 1 = serial); every
// point is independent, so results do not depend on the worker count.
[[nodiscard]] std::vector<AcPoint> ac_sweep(Circuit& circuit, const Vector& dc_op,
                                            const std::vector<double>& frequencies,
                                            std::size_t workers = 0);

struct ImpedancePoint {
  double frequency = 0.0;
  Complex impedance{};
};

// Differential impedance seen between two nodes: injects a 1 A AC probe
// through `probe` (whose DC value is untouched) and reads the voltage.
// The probe must already be connected between the two nodes.
[[nodiscard]] std::vector<ImpedancePoint> measure_impedance(
    Circuit& circuit, CurrentSource& probe, const std::string& positive,
    const std::string& negative, const Vector& dc_op,
    const std::vector<double>& frequencies, std::size_t workers = 0);

// Resonance characterization of an impedance curve: peak frequency, peak
// magnitude, and quality factor from the -3 dB bandwidth.
struct ResonanceSummary {
  double peak_frequency = 0.0;
  double peak_magnitude = 0.0;
  double bandwidth = 0.0;      // f(+3dB) - f(-3dB); 0 if not bracketed
  double quality_factor = 0.0; // peak_frequency / bandwidth
};
[[nodiscard]] ResonanceSummary summarize_resonance(const std::vector<ImpedancePoint>& curve);

}  // namespace lcosc::spice
