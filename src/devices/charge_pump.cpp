#include "devices/charge_pump.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::devices {

NegativeChargePump::NegativeChargePump(ChargePumpConfig config) : config_(config) {
  LCOSC_REQUIRE(config_.startup_time > 0.0 && config_.decay_time > 0.0,
                "charge pump time constants must be positive");
  LCOSC_REQUIRE(config_.target_voltage < 0.0, "negative charge pump target must be negative");
}

double NegativeChargePump::step(double dt) {
  const double target = enabled_ ? config_.target_voltage : 0.0;
  const double tau = enabled_ ? config_.startup_time : config_.decay_time;
  if (dt != cached_dt_ || tau != cached_tau_) {
    LCOSC_REQUIRE(dt >= 0.0, "time step must be non-negative");
    cached_decay_ = std::exp(-dt / tau);
    cached_dt_ = dt;
    cached_tau_ = tau;
  }
  output_ = target + (output_ - target) * cached_decay_;
  return output_;
}

}  // namespace lcosc::devices
