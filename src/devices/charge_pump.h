// Negative charge pump macro-model (paper Fig. 11).
//
// When the chip is powered, the pump drives the Nbulk-related gate rails
// a threshold below ground so the protection NMOS devices stay off for
// small negative excursions on the LC pins.  When the supply is lost the
// pump output decays to 0 V, handing control to the passive MN3/MN5 pull
// paths.  The model is a rate-limited target follower.
#pragma once

#include <cmath>

namespace lcosc::devices {

struct ChargePumpConfig {
  double target_voltage = -1.2;   // regulated output when enabled [V]
  double startup_time = 5e-6;     // time constant to reach the target [s]
  double decay_time = 2e-6;       // discharge time constant when disabled [s]
};

class NegativeChargePump {
 public:
  explicit NegativeChargePump(ChargePumpConfig config = {});

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Advance by dt; returns the new output voltage.
  double step(double dt);

  [[nodiscard]] double output() const { return output_; }
  void reset(double output = 0.0) { output_ = output; }

 private:
  ChargePumpConfig config_;
  bool enabled_ = false;
  double output_ = 0.0;
  // Memoized exp(-dt/tau), keyed on (dt, tau) like LowPassFilter::step:
  // the effective tau switches with enabled_, so dt alone is not a valid
  // key.  NaN sentinels force the first step() to compute.
  double cached_dt_ = std::nan("");
  double cached_tau_ = std::nan("");
  double cached_decay_ = 1.0;
};

}  // namespace lcosc::devices
