// Per-lane banks of the behavioral blocks the batched Monte-Carlo engine
// steps in lockstep: rectified-mean sensing, the detector low-pass, and
// the regulation window comparator.  Each bank applies the exact scalar
// update expression of its single-lane counterpart over a contiguous
// lane array (stride-1, branch-free where the scalar block is), so a
// bank's lane k is bit-identical to stepping a standalone block with lane
// k's inputs -- the invariant the batched-vs-serial report byte-diff
// rests on.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/constants.h"
#include "devices/comparator.h"

namespace lcosc::devices {

// Rectified-mean sensing bank: the detector sees the rectified mean of
// the pin swing, A / pi per lane (same expression as the serial envelope
// loop's `a / kPi`).
inline void rectified_mean_bank(std::span<const double> amplitudes, std::span<double> out) {
  for (std::size_t i = 0; i < amplitudes.size(); ++i) out[i] = amplitudes[i] / kPi;
}

// Bank of first-order RC low-pass filters sharing one time constant (the
// detector filter tau is a design constant, not a Monte-Carlo variable).
// The decay factor exp(-dt/tau) is memoized on dt exactly like
// LowPassFilter::step, and the per-lane update is the same
// `x + (y - x) * alpha` expression, so lane outputs match a scalar
// LowPassFilter stepped with the same inputs bit for bit.
class LowPassBank {
 public:
  LowPassBank(double tau, std::size_t lanes, double initial_output = 0.0);

  // Advance every lane by dt with per-lane held inputs x.
  void step(double dt, std::span<const double> x);

  [[nodiscard]] double output(std::size_t lane) const { return y_[lane]; }
  [[nodiscard]] std::span<const double> outputs() const { return y_; }
  [[nodiscard]] double tau() const { return tau_; }
  [[nodiscard]] std::size_t lanes() const { return y_.size(); }

 private:
  double tau_;
  std::vector<double> y_;
  // NaN sentinel: never compares equal, so the first step() computes.
  double cached_dt_ = std::nan("");
  double cached_alpha_ = 1.0;
};

// Regulation window verdict per lane against per-lane thresholds, using
// the serial envelope loop's exact comparison order: strictly below vr3
// wins, else strictly above vr4, else inside.
inline void window_verdict_bank(std::span<const double> vdc1, std::span<const double> vr3,
                                std::span<const double> vr4, std::span<WindowState> out) {
  for (std::size_t i = 0; i < vdc1.size(); ++i) {
    WindowState window = WindowState::Inside;
    if (vdc1[i] < vr3[i]) window = WindowState::Below;
    else if (vdc1[i] > vr4[i]) window = WindowState::Above;
    out[i] = window;
  }
}

}  // namespace lcosc::devices
