#include "devices/rectifier.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::devices {

FullWaveRectifierFilter::FullWaveRectifierFilter(RectifierConfig config)
    : config_(config), filter_(config.filter_tau) {
  LCOSC_REQUIRE(config_.forward_drop >= 0.0, "forward drop must be non-negative");
}

double FullWaveRectifierFilter::rectify(double v) const {
  const double magnitude = std::abs(v) - config_.forward_drop;
  return magnitude > 0.0 ? magnitude : 0.0;
}

double FullWaveRectifierFilter::step(double dt, double v) {
  return filter_.step(dt, rectify(v));
}

SynchronousRectifierFilter::SynchronousRectifierFilter(double filter_tau) : filter_(filter_tau) {}

double SynchronousRectifierFilter::step(double dt, double v, double v_ref) {
  const double mixed = (v_ref >= 0.0) ? v : -v;
  return filter_.step(dt, mixed);
}

}  // namespace lcosc::devices
