#include "devices/rectifier.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::devices {

FullWaveRectifierFilter::FullWaveRectifierFilter(RectifierConfig config)
    : config_(config), filter_(config.filter_tau) {
  LCOSC_REQUIRE(config_.forward_drop >= 0.0, "forward drop must be non-negative");
}

SynchronousRectifierFilter::SynchronousRectifierFilter(double filter_tau) : filter_(filter_tau) {}

}  // namespace lcosc::devices
