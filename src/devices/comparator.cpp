#include "devices/comparator.h"

#include "common/error.h"

namespace lcosc::devices {

Comparator::Comparator(ComparatorConfig config)
    : config_(config), output_(config.initial_output), raw_(config.initial_output) {
  LCOSC_REQUIRE(config_.hysteresis >= 0.0, "hysteresis must be non-negative");
  LCOSC_REQUIRE(config_.delay >= 0.0, "delay must be non-negative");
}

void Comparator::reset(bool state) {
  output_ = state;
  raw_ = state;
  pending_valid_ = false;
  first_update_ = true;
}


WindowComparator::WindowComparator(WindowComparatorConfig config) : config_(config) {
  LCOSC_REQUIRE(config_.high_threshold > config_.low_threshold,
                "window high threshold must exceed low threshold");
  LCOSC_REQUIRE(config_.hysteresis >= 0.0, "hysteresis must be non-negative");
  LCOSC_REQUIRE(config_.hysteresis < config_.high_threshold - config_.low_threshold,
                "hysteresis must be smaller than the window width");
}

void WindowComparator::reset() {
  state_ = WindowState::Inside;
  first_update_ = true;
}

}  // namespace lcosc::devices
