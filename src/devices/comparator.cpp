#include "devices/comparator.h"

#include "common/error.h"

namespace lcosc::devices {

Comparator::Comparator(ComparatorConfig config)
    : config_(config), output_(config.initial_output), raw_(config.initial_output) {
  LCOSC_REQUIRE(config_.hysteresis >= 0.0, "hysteresis must be non-negative");
  LCOSC_REQUIRE(config_.delay >= 0.0, "delay must be non-negative");
}

void Comparator::reset(bool state) {
  output_ = state;
  raw_ = state;
  pending_valid_ = false;
  first_update_ = true;
}

bool Comparator::update(double t, double v_diff) {
  LCOSC_REQUIRE(first_update_ || t >= last_time_, "comparator time must not go backwards");
  first_update_ = false;
  last_time_ = t;

  // Hysteresis thresholds around the offset.
  const double rise_at = config_.offset + 0.5 * config_.hysteresis;
  const double fall_at = config_.offset - 0.5 * config_.hysteresis;
  const bool new_raw = raw_ ? (v_diff > fall_at) : (v_diff > rise_at);

  if (new_raw != raw_) {
    raw_ = new_raw;
    if (config_.delay == 0.0) {
      output_ = raw_;
      pending_valid_ = false;
    } else {
      pending_state_ = raw_;
      pending_time_ = t + config_.delay;
      pending_valid_ = true;
    }
  }
  if (pending_valid_ && t >= pending_time_) {
    output_ = pending_state_;
    pending_valid_ = false;
  }
  return output_;
}

WindowComparator::WindowComparator(WindowComparatorConfig config) : config_(config) {
  LCOSC_REQUIRE(config_.high_threshold > config_.low_threshold,
                "window high threshold must exceed low threshold");
  LCOSC_REQUIRE(config_.hysteresis >= 0.0, "hysteresis must be non-negative");
  LCOSC_REQUIRE(config_.hysteresis < config_.high_threshold - config_.low_threshold,
                "hysteresis must be smaller than the window width");
}

void WindowComparator::reset() {
  state_ = WindowState::Inside;
  first_update_ = true;
}

WindowState WindowComparator::update(double v) {
  const double h = 0.5 * config_.hysteresis;
  if (first_update_) {
    first_update_ = false;
    if (v < config_.low_threshold) state_ = WindowState::Below;
    else if (v > config_.high_threshold) state_ = WindowState::Above;
    else state_ = WindowState::Inside;
    return state_;
  }

  switch (state_) {
    case WindowState::Below:
      if (v > config_.high_threshold + h) state_ = WindowState::Above;
      else if (v > config_.low_threshold + h) state_ = WindowState::Inside;
      break;
    case WindowState::Inside:
      if (v < config_.low_threshold - h) state_ = WindowState::Below;
      else if (v > config_.high_threshold + h) state_ = WindowState::Above;
      break;
    case WindowState::Above:
      if (v < config_.low_threshold - h) state_ = WindowState::Below;
      else if (v < config_.high_threshold - h) state_ = WindowState::Inside;
      break;
  }
  return state_;
}

}  // namespace lcosc::devices
