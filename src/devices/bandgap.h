// Bandgap voltage reference macro-model.
//
// The regulation thresholds VR3/VR4 (paper Fig. 8) are fractions of the
// bandgap voltage added to the filtered LC midpoint, so threshold accuracy
// over temperature follows the bandgap curvature modeled here.
#pragma once

namespace lcosc::devices {

struct BandgapConfig {
  double nominal_voltage = 1.205;      // V at the zero-tempco temperature
  double zero_tc_temperature = 300.0;  // K
  // Second-order curvature coefficient [V/K^2]; first-order is nulled by
  // design at zero_tc_temperature.
  double curvature = -2.0e-7;
  // Untrimmed relative production spread (1 sigma); applied via trim_error.
  double trim_error = 0.0;
};

class BandgapReference {
 public:
  explicit BandgapReference(BandgapConfig config = {});

  // Output voltage at the given junction temperature [K].
  [[nodiscard]] double voltage(double temperature_kelvin) const;

  // Output at the zero-tempco temperature.
  [[nodiscard]] double nominal() const;

  [[nodiscard]] const BandgapConfig& config() const { return config_; }

 private:
  BandgapConfig config_;
};

}  // namespace lcosc::devices
