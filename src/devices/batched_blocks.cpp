#include "devices/batched_blocks.h"

#include "common/error.h"

namespace lcosc::devices {

LowPassBank::LowPassBank(double tau, std::size_t lanes, double initial_output)
    : tau_(tau), y_(lanes, initial_output) {
  LCOSC_REQUIRE(tau > 0.0, "low-pass tau must be positive");
  LCOSC_REQUIRE(lanes > 0, "low-pass bank needs at least one lane");
}

void LowPassBank::step(double dt, std::span<const double> x) {
  LCOSC_REQUIRE(x.size() == y_.size(), "input size must match the lane count");
  if (dt != cached_dt_) {
    LCOSC_REQUIRE(dt >= 0.0, "dt must be non-negative");
    cached_alpha_ = std::exp(-dt / tau_);
    cached_dt_ = dt;
  }
  const double alpha = cached_alpha_;
  for (std::size_t i = 0; i < y_.size(); ++i) y_[i] = x[i] + (y_[i] - x[i]) * alpha;
}

}  // namespace lcosc::devices
