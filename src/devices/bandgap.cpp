#include "devices/bandgap.h"

#include "common/error.h"

namespace lcosc::devices {

BandgapReference::BandgapReference(BandgapConfig config) : config_(config) {
  LCOSC_REQUIRE(config_.nominal_voltage > 0.0, "bandgap voltage must be positive");
  LCOSC_REQUIRE(config_.zero_tc_temperature > 0.0, "temperature must be positive");
}

double BandgapReference::voltage(double temperature_kelvin) const {
  LCOSC_REQUIRE(temperature_kelvin > 0.0, "temperature must be positive");
  const double dt = temperature_kelvin - config_.zero_tc_temperature;
  return config_.nominal_voltage * (1.0 + config_.trim_error) + config_.curvature * dt * dt;
}

double BandgapReference::nominal() const {
  return config_.nominal_voltage * (1.0 + config_.trim_error);
}

}  // namespace lcosc::devices
