// Rectifier macro-models for the amplitude detection path (paper Fig. 8).
#pragma once

#include <cmath>

#include "devices/lowpass.h"

namespace lcosc::devices {

struct RectifierConfig {
  // Forward drop of the rectifying element (0 for an ideal active rectifier).
  double forward_drop = 0.0;
  // Time constant of the post-rectifier RC low-pass.
  double filter_tau = 20e-6;
};

// Full-wave rectifier followed by an RC low-pass: produces the VDC1
// envelope voltage the window comparator consumes.
class FullWaveRectifierFilter {
 public:
  explicit FullWaveRectifierFilter(RectifierConfig config = {});

  // Advance by dt with instantaneous input voltage v (already referenced
  // to the midpoint); returns the filtered rectified output.  Inline with
  // rectify(): one call per integration step per detector.
  double step(double dt, double v) { return filter_.step(dt, rectify(v)); }

  [[nodiscard]] double output() const { return filter_.output(); }
  void reset(double output = 0.0) { filter_.reset(output); }

  // The static rectification function (exposed for tests).
  [[nodiscard]] double rectify(double v) const {
    const double magnitude = std::abs(v) - config_.forward_drop;
    return magnitude > 0.0 ? magnitude : 0.0;
  }

 private:
  RectifierConfig config_;
  LowPassFilter filter_;
};

// Synchronous rectifier: multiplies the input by the sign of a reference
// (clock) signal before filtering.  The paper uses it to detect amplitude
// asymmetry between the LC1 and LC2 pins: a healthy tank has a pure DC
// midpoint, a missing Cosc turns the midpoint into an oscillation at the
// tank frequency whose synchronous average is non-zero.
class SynchronousRectifierFilter {
 public:
  explicit SynchronousRectifierFilter(double filter_tau);

  // Advance by dt: v is the signal, v_ref the phase reference.
  double step(double dt, double v, double v_ref) {
    const double mixed = (v_ref >= 0.0) ? v : -v;
    return filter_.step(dt, mixed);
  }

  [[nodiscard]] double output() const { return filter_.output(); }
  void reset(double output = 0.0) { filter_.reset(output); }

 private:
  LowPassFilter filter_;
};

}  // namespace lcosc::devices
