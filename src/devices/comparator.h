// Behavioral comparators: hysteresis + propagation delay, and the
// three-state window comparator used by the amplitude regulation loop.
#pragma once

namespace lcosc::devices {

struct ComparatorConfig {
  double offset = 0.0;       // input-referred offset [V]
  double hysteresis = 0.0;   // full hysteresis width [V], centered on offset
  double delay = 0.0;        // propagation delay [s]
  bool initial_output = false;
};

// Latching continuous-time comparator evaluated on samples.  Calls to
// update() must have non-decreasing time stamps.
class Comparator {
 public:
  explicit Comparator(ComparatorConfig config = {});

  // Evaluate at time t with differential input v_diff = v(+) - v(-);
  // returns the (delay-filtered) output state at time t.
  bool update(double t, double v_diff);

  [[nodiscard]] bool output() const { return output_; }
  void reset(bool state = false);

 private:
  ComparatorConfig config_;
  bool output_;
  bool raw_;
  bool pending_valid_ = false;
  bool pending_state_ = false;
  double pending_time_ = 0.0;
  double last_time_ = 0.0;
  bool first_update_ = true;
};

// Three-state window comparator with per-threshold hysteresis.
enum class WindowState { Below, Inside, Above };

struct WindowComparatorConfig {
  double low_threshold = 0.0;
  double high_threshold = 0.0;
  double hysteresis = 0.0;  // full width, applied to both thresholds
};

class WindowComparator {
 public:
  explicit WindowComparator(WindowComparatorConfig config);

  // Evaluate the window state for input v (stateful due to hysteresis).
  WindowState update(double v);

  [[nodiscard]] WindowState state() const { return state_; }
  [[nodiscard]] const WindowComparatorConfig& config() const { return config_; }
  void reset();

 private:
  WindowComparatorConfig config_;
  WindowState state_ = WindowState::Inside;
  bool first_update_ = true;
};

}  // namespace lcosc::devices
