// Behavioral comparators: hysteresis + propagation delay, and the
// three-state window comparator used by the amplitude regulation loop.
#pragma once

#include "common/error.h"

namespace lcosc::devices {

struct ComparatorConfig {
  double offset = 0.0;       // input-referred offset [V]
  double hysteresis = 0.0;   // full hysteresis width [V], centered on offset
  double delay = 0.0;        // propagation delay [s]
  bool initial_output = false;
};

// Latching continuous-time comparator evaluated on samples.  Calls to
// update() must have non-decreasing time stamps.
class Comparator {
 public:
  explicit Comparator(ComparatorConfig config = {});

  // Evaluate at time t with differential input v_diff = v(+) - v(-);
  // returns the (delay-filtered) output state at time t.  Inline: the
  // detectors call this once per integration step.
  bool update(double t, double v_diff) {
    LCOSC_REQUIRE(first_update_ || t >= last_time_, "comparator time must not go backwards");
    first_update_ = false;
    last_time_ = t;

    // Hysteresis thresholds around the offset.
    const double rise_at = config_.offset + 0.5 * config_.hysteresis;
    const double fall_at = config_.offset - 0.5 * config_.hysteresis;
    const bool new_raw = raw_ ? (v_diff > fall_at) : (v_diff > rise_at);

    if (new_raw != raw_) {
      raw_ = new_raw;
      if (config_.delay == 0.0) {
        output_ = raw_;
        pending_valid_ = false;
      } else {
        pending_state_ = raw_;
        pending_time_ = t + config_.delay;
        pending_valid_ = true;
      }
    }
    if (pending_valid_ && t >= pending_time_) {
      output_ = pending_state_;
      pending_valid_ = false;
    }
    return output_;
  }

  [[nodiscard]] bool output() const { return output_; }
  void reset(bool state = false);

 private:
  ComparatorConfig config_;
  bool output_;
  bool raw_;
  bool pending_valid_ = false;
  bool pending_state_ = false;
  double pending_time_ = 0.0;
  double last_time_ = 0.0;
  bool first_update_ = true;
};

// Three-state window comparator with per-threshold hysteresis.
enum class WindowState { Below, Inside, Above };

struct WindowComparatorConfig {
  double low_threshold = 0.0;
  double high_threshold = 0.0;
  double hysteresis = 0.0;  // full width, applied to both thresholds
};

class WindowComparator {
 public:
  explicit WindowComparator(WindowComparatorConfig config);

  // Evaluate the window state for input v (stateful due to hysteresis).
  // Inline: the regulation detector calls this once per integration step.
  WindowState update(double v) {
    const double h = 0.5 * config_.hysteresis;
    if (first_update_) {
      first_update_ = false;
      if (v < config_.low_threshold) state_ = WindowState::Below;
      else if (v > config_.high_threshold) state_ = WindowState::Above;
      else state_ = WindowState::Inside;
      return state_;
    }

    switch (state_) {
      case WindowState::Below:
        if (v > config_.high_threshold + h) state_ = WindowState::Above;
        else if (v > config_.low_threshold + h) state_ = WindowState::Inside;
        break;
      case WindowState::Inside:
        if (v < config_.low_threshold - h) state_ = WindowState::Below;
        else if (v > config_.high_threshold + h) state_ = WindowState::Above;
        break;
      case WindowState::Above:
        if (v < config_.low_threshold - h) state_ = WindowState::Below;
        else if (v < config_.high_threshold - h) state_ = WindowState::Inside;
        break;
    }
    return state_;
  }

  [[nodiscard]] WindowState state() const { return state_; }
  [[nodiscard]] const WindowComparatorConfig& config() const { return config_; }
  void reset();

 private:
  WindowComparatorConfig config_;
  WindowState state_ = WindowState::Inside;
  bool first_update_ = true;
};

}  // namespace lcosc::devices
