#include "devices/vref_buffer.h"

#include "common/error.h"

namespace lcosc::devices {

VrefBuffer::VrefBuffer(VrefBufferConfig config) : config_(config) {
  LCOSC_REQUIRE(config_.output_resistance > 0.0, "output resistance must be positive");
  LCOSC_REQUIRE(config_.max_source_current > 0.0 && config_.max_sink_current > 0.0,
                "class-A current limits must be positive");
}

bool VrefBuffer::overloaded(double load_current) const {
  return load_current > config_.max_source_current || -load_current > config_.max_sink_current;
}

double VrefBuffer::voltage(double load_current) const {
  if (!overloaded(load_current)) {
    return config_.target_voltage - load_current * config_.output_resistance;
  }
  // Saturated stage: linear droop up to the limit, then high-impedance walk.
  if (load_current > 0.0) {
    const double excess = load_current - config_.max_source_current;
    return config_.target_voltage - config_.max_source_current * config_.output_resistance -
           excess * kOverloadResistance;
  }
  const double excess = -load_current - config_.max_sink_current;
  return config_.target_voltage + config_.max_sink_current * config_.output_resistance +
         excess * kOverloadResistance;
}

}  // namespace lcosc::devices
