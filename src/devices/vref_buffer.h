// Transimpedance Vref buffer (paper paragraph 6).
//
// The Vref point holds the DC operating point of the oscillator at mid
// supply.  In dual-system mode the other oscillator couples extra current
// into Vref (typically ~120 uA per the paper); the buffer is a
// transimpedance amplifier with two class-A output stages, so its
// source/sink capability is finite and the Vref error grows linearly with
// the absorbed current until the stage saturates.
#pragma once

namespace lcosc::devices {

struct VrefBufferConfig {
  double target_voltage = 2.5;     // Vdd/2 for a 5 V supply
  double output_resistance = 50.0; // small-signal output impedance [ohm]
  // Class-A bias: maximum current each output stage can source/sink [A].
  double max_source_current = 400e-6;
  double max_sink_current = 400e-6;
};

class VrefBuffer {
 public:
  explicit VrefBuffer(VrefBufferConfig config = {});

  // Vref voltage when the external circuit draws `load_current` from the
  // node (positive = current flowing out of the buffer).  Inside the
  // class-A range the droop is i*Rout; outside, the stage saturates and
  // Vref walks away at the rate set by `overload_resistance`.
  [[nodiscard]] double voltage(double load_current) const;

  // True if the requested load current exceeds the class-A capability.
  [[nodiscard]] bool overloaded(double load_current) const;

  [[nodiscard]] const VrefBufferConfig& config() const { return config_; }

 private:
  VrefBufferConfig config_;
  // Effective impedance once the class-A stage has run out of current.
  static constexpr double kOverloadResistance = 100e3;
};

}  // namespace lcosc::devices
