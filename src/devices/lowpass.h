// First-order RC low-pass filter with an exact exponential step update.
#pragma once

namespace lcosc::devices {

// y(t) tracks x with time constant tau.  The update is the exact solution
// for piecewise-constant input, so it is unconditionally stable for any
// step size (important: detector time constants sit orders of magnitude
// above the RF simulation step).
class LowPassFilter {
 public:
  explicit LowPassFilter(double tau, double initial_output = 0.0);

  // Advance by dt with (held) input x; returns the new output.
  double step(double dt, double x);

  [[nodiscard]] double output() const { return y_; }
  [[nodiscard]] double tau() const { return tau_; }
  void reset(double output = 0.0) { y_ = output; }

 private:
  double tau_;
  double y_;
};

}  // namespace lcosc::devices
