// First-order RC low-pass filter with an exact exponential step update.
#pragma once

#include <cmath>

namespace lcosc::devices {

// y(t) tracks x with time constant tau.  The update is the exact solution
// for piecewise-constant input, so it is unconditionally stable for any
// step size (important: detector time constants sit orders of magnitude
// above the RF simulation step).
class LowPassFilter {
 public:
  explicit LowPassFilter(double tau, double initial_output = 0.0);

  // Advance by dt with (held) input x; returns the new output.
  //
  // The decay factor exp(-dt/tau) is memoized on dt: fixed-step callers
  // (the RK4 system loop calls this tens of millions of times with one
  // dt) skip the transcendental entirely, and the cached value is the
  // exact double exp() returned for that dt, so results are bit-identical
  // to the uncached evaluation.
  double step(double dt, double x) {
    if (dt != cached_dt_) {
      check_dt(dt);
      cached_alpha_ = std::exp(-dt / tau_);
      cached_dt_ = dt;
    }
    y_ = x + (y_ - x) * cached_alpha_;
    return y_;
  }

  [[nodiscard]] double output() const { return y_; }
  [[nodiscard]] double tau() const { return tau_; }
  void reset(double output = 0.0) { y_ = output; }

 private:
  // Validates dt (throws on negative); out of line to keep step() lean.
  static void check_dt(double dt);

  double tau_;
  double y_;
  // NaN sentinel: never compares equal, so the first step() computes.
  double cached_dt_ = std::nan("");
  double cached_alpha_ = 1.0;
};

}  // namespace lcosc::devices
