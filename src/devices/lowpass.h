// First-order RC low-pass filter with an exact exponential step update.
#pragma once

#include <cmath>

namespace lcosc::devices {

// y(t) tracks x with time constant tau.  The update is the exact solution
// for piecewise-constant input, so it is unconditionally stable for any
// step size (important: detector time constants sit orders of magnitude
// above the RF simulation step).
class LowPassFilter {
 public:
  explicit LowPassFilter(double tau, double initial_output = 0.0);

  // Advance by dt with (held) input x; returns the new output.
  //
  // The decay factor exp(-dt/tau) is memoized on the (dt, tau) pair:
  // fixed-step callers (the RK4 system loop calls this tens of millions
  // of times with one dt) skip the transcendental entirely, and the
  // cached value is the exact double exp() returned for that pair, so
  // results are bit-identical to the uncached evaluation.  Keying on tau
  // as well keeps the cache correct across set_tau() retuning.
  double step(double dt, double x) {
    if (dt != cached_dt_ || tau_ != cached_tau_) {
      check_dt(dt);
      cached_alpha_ = std::exp(-dt / tau_);
      cached_dt_ = dt;
      cached_tau_ = tau_;
    }
    y_ = x + (y_ - x) * cached_alpha_;
    return y_;
  }

  [[nodiscard]] double output() const { return y_; }
  [[nodiscard]] double tau() const { return tau_; }
  // Retune the time constant; the output state is kept.  The next step()
  // recomputes the decay factor (the memo key includes tau).
  void set_tau(double tau);
  void reset(double output = 0.0) { y_ = output; }

 private:
  // Validates dt (throws on negative); out of line to keep step() lean.
  static void check_dt(double dt);

  double tau_;
  double y_;
  // NaN sentinels: never compare equal, so the first step() computes.
  double cached_dt_ = std::nan("");
  double cached_tau_ = std::nan("");
  double cached_alpha_ = 1.0;
};

}  // namespace lcosc::devices
