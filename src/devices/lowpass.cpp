#include "devices/lowpass.h"

#include "common/error.h"

namespace lcosc::devices {

LowPassFilter::LowPassFilter(double tau, double initial_output)
    : tau_(tau), y_(initial_output) {
  LCOSC_REQUIRE(tau > 0.0, "low-pass time constant must be positive");
}

void LowPassFilter::set_tau(double tau) {
  LCOSC_REQUIRE(tau > 0.0, "low-pass time constant must be positive");
  tau_ = tau;
}

void LowPassFilter::check_dt(double dt) {
  LCOSC_REQUIRE(dt >= 0.0, "time step must be non-negative");
}

}  // namespace lcosc::devices
