#include "devices/lowpass.h"

#include <cmath>

#include "common/error.h"

namespace lcosc::devices {

LowPassFilter::LowPassFilter(double tau, double initial_output)
    : tau_(tau), y_(initial_output) {
  LCOSC_REQUIRE(tau > 0.0, "low-pass time constant must be positive");
}

double LowPassFilter::step(double dt, double x) {
  LCOSC_REQUIRE(dt >= 0.0, "time step must be non-negative");
  const double alpha = std::exp(-dt / tau_);
  y_ = x + (y_ - x) * alpha;
  return y_;
}

}  // namespace lcosc::devices
