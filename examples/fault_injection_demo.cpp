// Safety demo: inject each external fault class of paper Section 7 into a
// running system and narrate what the detectors and the regulation state
// machine do about it.
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/fmea_campaign.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Fault injection walkthrough (paper Section 7) ===\n\n";

  FmeaCampaignConfig cfg;
  cfg.system.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.system.regulation.tick_period = 0.25_ms;
  cfg.system.waveform_decimation = 0;
  cfg.settle_time = 6e-3;
  cfg.observe_time = 10e-3;
  cfg.severity.resistance_factor = 30.0;
  cfg.severity.shorted_turn_fraction = 0.9;

  for (const tank::TankFault fault : fmea_fault_list()) {
    const FmeaRow row = run_fmea_case(cfg, fault);
    std::cout << "--- " << tank::to_string(fault) << " (injected at "
              << si_format(cfg.settle_time, "s") << ")\n";
    std::cout << "    expected channel : " << tank::to_string(row.expected) << "\n";
    std::cout << "    detectors fired  :";
    if (row.observed.missing_oscillation) std::cout << " missing-oscillation";
    if (row.observed.low_amplitude) std::cout << " low-amplitude";
    if (row.observed.asymmetry) std::cout << " asymmetry";
    if (!row.detected) std::cout << " (none)";
    std::cout << "\n";
    if (row.detection_latency) {
      std::cout << "    latency          : " << si_format(*row.detection_latency, "s") << "\n";
    }
    std::cout << "    reaction         : "
              << (row.safe_state_entered
                      ? "SAFE STATE (driver at maximum current, outputs safe)"
                      : "none")
              << ", final code " << row.final_code << "\n\n";
  }

  std::cout << "Control run (no fault):\n";
  const FmeaRow control = run_fmea_case(cfg, tank::TankFault::None);
  std::cout << "    detectors fired  : " << (control.detected ? "UNEXPECTED" : "(none)")
            << ", final code " << control.final_code << "\n";
  return 0;
}
