// Safety demo: inject each external fault class of paper Section 7 into a
// running system and narrate what the detectors and the regulation state
// machine do about it.  The final section turns the telemetry layer on
// for one injected fault and dumps the structured event log (JSONL) plus
// a Perfetto-loadable trace, as a worked "inspecting a run" example
// (README, DESIGN.md §10).
#include <fstream>
#include <iostream>
#include <string>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"
#include "system/fmea_campaign.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Fault injection walkthrough (paper Section 7) ===\n\n";

  FmeaCampaignConfig cfg;
  cfg.system.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.system.regulation.tick_period = 0.25_ms;
  cfg.system.waveform_decimation = 0;
  cfg.settle_time = 6e-3;
  cfg.observe_time = 10e-3;
  cfg.severity.resistance_factor = 30.0;
  cfg.severity.shorted_turn_fraction = 0.9;

  for (const tank::TankFault fault : fmea_fault_list()) {
    const FmeaRow row = run_fmea_case(cfg, fault);
    std::cout << "--- " << tank::to_string(fault) << " (injected at "
              << si_format(cfg.settle_time, "s") << ")\n";
    std::cout << "    expected channel : " << tank::to_string(row.expected) << "\n";
    std::cout << "    detectors fired  :";
    if (row.observed.missing_oscillation) std::cout << " missing-oscillation";
    if (row.observed.low_amplitude) std::cout << " low-amplitude";
    if (row.observed.asymmetry) std::cout << " asymmetry";
    if (!row.detected) std::cout << " (none)";
    std::cout << "\n";
    if (row.detection_latency) {
      std::cout << "    latency          : " << si_format(*row.detection_latency, "s") << "\n";
    }
    std::cout << "    reaction         : "
              << (row.safe_state_entered
                      ? "SAFE STATE (driver at maximum current, outputs safe)"
                      : "none")
              << ", final code " << row.final_code << "\n\n";
  }

  std::cout << "Control run (no fault):\n";
  const FmeaRow control = run_fmea_case(cfg, tank::TankFault::None);
  std::cout << "    detectors fired  : " << (control.detected ? "UNEXPECTED" : "(none)")
            << ", final code " << control.final_code << "\n";

  // --- Telemetry walkthrough: re-run one injected fault with the full
  // observability stack on and dump the artifacts.  The event log shows
  // the injection-to-trip timeline (fsm.code walks, safety.trip with the
  // simulation time, fsm.mode -> safe_state, campaign.case outcome); the
  // trace file opens in Perfetto / chrome://tracing.
  std::cout << "\n=== Telemetry dump for one injected fault (open coil) ===\n\n";
  const std::string events_path = "artifacts/fault_demo_events.jsonl";
  const std::string trace_path = "artifacts/trace_fault_demo.json";
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  obs::clear_trace();
  if (!obs::open_event_log(events_path)) {
    std::cout << "could not open " << events_path << "\n";
    return 1;
  }
  const FmeaRow traced = run_fmea_case(cfg, tank::TankFault::OpenCoil);
  obs::close_event_log();
  obs::write_chrome_trace(trace_path);

  std::cout << "outcome: " << to_string(traced.status.outcome) << ", latency "
            << (traced.detection_latency ? si_format(*traced.detection_latency, "s")
                                         : std::string("-"))
            << "\n\nevent log (" << events_path << "), first lines:\n";
  std::ifstream events(events_path);
  std::string line;
  for (int i = 0; i < 6 && std::getline(events, line); ++i) {
    std::cout << "  " << line << "\n";
  }
  std::cout << "  ...\n\ntrace (" << trace_path << "): " << obs::trace_event_count()
            << " events -- load it in Perfetto (ui.perfetto.dev) to see the\n"
            << "fmea:open-coil span enclosing system.run, with safety.trip and\n"
            << "fsm.safe_state instants marking the detection.\n";
  return 0;
}
