// The application of Section 1: the regulated harmonic excitation couples
// into receiving coils; comparing the demodulated amplitudes yields the
// rotor position.  This example runs the full oscillator, feeds its
// differential output into the receiving-coil model, and sweeps the rotor.
#include <cmath>
#include <iostream>

#include "common/constants.h"
#include "common/random.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/oscillator_system.h"
#include "system/position_sensor.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  std::cout << "=== Position sensing with the regulated LC oscillator ===\n\n";

  // Regulated excitation (cycle-accurate, with waveforms recorded).
  OscillatorSystemConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.regulation.tick_period = 0.25_ms;
  cfg.waveform_decimation = 1;
  OscillatorSystem sys(cfg);
  std::cout << "running the oscillator to steady state...\n";
  const SimulationResult run = sys.run(6e-3);
  const Trace& vd = run.differential;
  std::cout << "excitation amplitude: " << format_significant(run.settled_amplitude(), 3)
            << " V\n\n";

  // Demodulate the recorded excitation against rotor angles.
  // 20 mV RMS of receiver noise makes the accuracy figure honest.
  const double noise_rms = 20e-3;
  Rng rng(4242);
  TablePrinter table({"true angle [deg]", "estimated [deg]", "error [deg]"});
  double worst_error = 0.0;
  for (double theta_deg = -180.0; theta_deg <= 180.0; theta_deg += 30.0) {
    const double theta = theta_deg * kPi / 180.0;
    PositionSensor sensor({.coupling_gain = 0.3, .filter_tau = 50e-6});
    // Feed the last millisecond of the steady excitation waveform.
    const double t0 = vd.end_time() - 1e-3;
    double prev_t = t0;
    for (std::size_t i = 0; i < vd.size(); ++i) {
      if (vd.time(i) < t0) continue;
      const double dt = vd.time(i) - prev_t;
      if (dt > 0) {
        sensor.step(dt, vd.value(i), theta, rng.normal(0.0, noise_rms),
                    rng.normal(0.0, noise_rms));
      }
      prev_t = vd.time(i);
    }
    double est = sensor.estimated_angle() * 180.0 / kPi;
    double err = est - theta_deg;
    while (err > 180.0) err -= 360.0;
    while (err < -180.0) err += 360.0;
    worst_error = std::max(worst_error, std::abs(err));
    table.add_values(format_significant(theta_deg, 4), format_significant(est, 4),
                     format_significant(err, 3));
  }
  table.print(std::cout);

  std::cout << "\nworst-case angle error: " << format_significant(worst_error, 3)
            << " deg over the full circle (with " << si_format(noise_rms, "V")
            << " RMS receiver noise).\n"
            << "The estimate is a ratio of the two receiving channels, so the\n"
            << "regulated amplitude cancels -- which is why the driver only needs to\n"
            << "keep the amplitude inside the window, not at an exact value.\n";
  return 0;
}
