// Quickstart: configure a tank, run a regulated startup, inspect the
// result.  This is the 20-line tour of the public API.
#include <iostream>

#include "common/si_format.h"
#include "common/units.h"
#include "core/lc_oscillator.h"

using namespace lcosc;
using namespace lcosc::literals;

int main() {
  // 1. Describe the external LC network: a 3.3 uH excitation coil with
  //    symmetric capacitors, resonating at 4 MHz with quality factor 40.
  LcOscillatorConfig config;
  config.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  config.regulation.tick_period = 0.25_ms;  // fast-tick variant for the demo
  config.waveform_decimation = 0;           // envelopes only (lean memory)

  LcOscillatorDriver osc(config);

  const tank::RlcTank tk = osc.tank_model();
  std::cout << "tank: f0 = " << si_format(tk.resonance_frequency(), "Hz")
            << ", Q = " << format_significant(tk.quality_factor(), 3)
            << ", Rp = " << si_format(tk.parallel_resistance(), "Ohm")
            << ", critical gm = " << si_format(tk.critical_gm(), "S") << "\n";

  // 2. Analytic expectations (Eqs. 1-5 of the paper).
  if (const auto code = osc.expected_settling_code()) {
    std::cout << "expected regulation code: " << *code << " (current limit "
              << si_format(dac::PwlExponentialDac().current(*code), "A") << ")\n";
  }
  std::cout << "expected supply current: " << si_format(osc.expected_supply_current(), "A")
            << "\n\n";

  // 3. Run the full system: POR preset (code 105), startup, regulation.
  const auto result = osc.run_startup(25e-3);
  std::cout << "simulated " << result.ticks.size() << " regulation ticks\n"
            << "settled amplitude: " << format_significant(result.settled_amplitude(), 3)
            << " V differential peak (target 2.7 V)\n"
            << "final code: " << result.final_code << "\n"
            << "faults: " << (result.final_faults.any() ? "FAULT" : "none") << "\n";
  return 0;
}
