// Standalone circuit-solver CLI: load a SPICE-flavoured netlist and run
// DC, a DC sweep, AC, or transient analysis on it.  Makes the lcosc spice
// engine usable as a tool (e.g. to explore variants of the paper's
// Fig. 10/11 output stages without recompiling).
//
// Usage:
//   netlist_runner <file> dc
//   netlist_runner <file> sweep <source> <from> <to> <points> [probe...]
//   netlist_runner <file> ac <f_lo> <f_hi> <points> <probe>
//   netlist_runner <file> tran <t_stop> <dt> <probe...>
//   netlist_runner --demo            (runs a built-in demo netlist)
#include <cmath>
#include <complex>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli_parse.h"
#include "common/error.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "spice/ac_solver.h"
#include "spice/netlist_parser.h"
#include "spice/sweep.h"
#include "spice/transient_solver.h"

using namespace lcosc;
using namespace lcosc::spice;

namespace {

constexpr const char* kDemoNetlist = R"(* demo: diode-loaded divider with an LC output filter
V1 in 0 5 ac=1
R1 in mid 1k
D1 mid 0
L1 mid out 100u
C2 out 0 100n
R2 out 0 10k
)";

int run_dc(Circuit& c) {
  const DcSolution s = solve_dc(c);
  if (!s.converged) {
    std::cerr << "DC analysis did not converge\n";
    return 1;
  }
  TablePrinter table({"node", "voltage"});
  for (std::size_t n = 1; n < c.node_count(); ++n) {
    table.add_values(c.node_name(n), si_format(Circuit::voltage(s.x, n), "V"));
  }
  table.print(std::cout);
  return 0;
}

int run_sweep(Circuit& c, const std::string& source, double lo, double hi, int points,
              const std::vector<std::string>& probes) {
  auto* src = c.find_as<VoltageSource>(source);
  if (src == nullptr) {
    std::cerr << "no voltage source named " << source << "\n";
    return 1;
  }
  const SweepResult r = dc_sweep(c, *src, linspace(lo, hi, static_cast<std::size_t>(points)));
  std::vector<std::string> headers = {source + " [V]"};
  for (const auto& p : probes) headers.push_back("v(" + p + ")");
  TablePrinter table(headers);
  for (const auto& point : r.points) {
    std::vector<std::string> row = {format_significant(point.value, 4)};
    for (const auto& p : probes) {
      row.push_back(point.converged ? format_significant(point.solution.voltage(c, p), 5)
                                    : "n/c");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  return 0;
}

int run_ac(Circuit& c, double f_lo, double f_hi, int points, const std::string& probe) {
  const DcSolution op = solve_dc(c);
  if (!op.converged) {
    std::cerr << "operating point did not converge\n";
    return 1;
  }
  const auto freqs = logspace(f_lo, f_hi, static_cast<std::size_t>(points));
  const auto sweep = ac_sweep(c, op.x, freqs);
  TablePrinter table({"f [Hz]", "|v| [dB]", "phase [deg]"});
  for (const auto& p : sweep) {
    if (!p.ok) continue;
    const Complex v = p.voltage(c, probe);
    table.add_values(si_format(p.frequency, "Hz", 4),
                     format_significant(20.0 * std::log10(std::max(std::abs(v), 1e-30)), 4),
                     format_significant(std::arg(v) * 180.0 / 3.14159265358979, 4));
  }
  table.print(std::cout);
  return 0;
}

int run_tran(Circuit& c, double t_stop, double dt, const std::vector<std::string>& probes) {
  TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = dt;
  opt.integration = Integration::Trapezoidal;
  const TransientResult r = run_transient(c, opt, probes);
  std::vector<std::string> headers = {"t [s]"};
  for (const auto& p : probes) headers.push_back("v(" + p + ")");
  TablePrinter table(headers);
  const Trace& first = r.traces.front();
  const std::size_t stride = std::max<std::size_t>(1, first.size() / 40);
  for (std::size_t i = 0; i < first.size(); i += stride) {
    std::vector<std::string> row = {format_significant(first.time(i), 5)};
    for (const auto& trace : r.traces) row.push_back(format_significant(trace.value(i), 5));
    table.add_row(row);
  }
  table.print(std::cout);
  if (!r.converged) std::cerr << "warning: some time steps did not converge\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "--demo") {
      std::cout << "=== netlist_runner demo ===\n\nNetlist:\n" << kDemoNetlist << "\nDC:\n";
      auto circuit = parse_netlist(kDemoNetlist);
      run_dc(*circuit);
      std::cout << "\nAC response at v(out):\n";
      run_ac(*circuit, 100.0, 1e6, 13, "out");
      std::cout << "\n(usage: netlist_runner <file> dc|sweep|ac|tran ... )\n";
      return 0;
    }
    if (args.size() < 2) {
      std::cerr << "usage: netlist_runner <file> dc|sweep|ac|tran ...\n";
      return 2;
    }
    auto circuit = parse_netlist_file(args[0]);
    const std::string& mode = args[1];
    if (mode == "dc") return run_dc(*circuit);
    if (mode == "sweep" && args.size() >= 6) {
      return run_sweep(*circuit, args[2], parse_cli_double("<from>", args[3]),
                       parse_cli_double("<to>", args[4]), parse_cli_int("<points>", args[5]),
                       {args.begin() + 6, args.end()});
    }
    if (mode == "ac" && args.size() >= 6) {
      return run_ac(*circuit, parse_cli_double("<f_lo>", args[2]),
                    parse_cli_double("<f_hi>", args[3]), parse_cli_int("<points>", args[4]),
                    args[5]);
    }
    if (mode == "tran" && args.size() >= 5) {
      return run_tran(*circuit, parse_cli_double("<t_stop>", args[2]),
                      parse_cli_double("<dt>", args[3]), {args.begin() + 4, args.end()});
    }
    std::cerr << "unrecognized or incomplete command\n";
    return 2;
  } catch (const ConfigError& e) {
    // Mistyped command-line numbers and netlist syntax errors are usage
    // errors, not solver failures.
    std::cerr << "usage error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
