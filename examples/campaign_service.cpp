// Sharded campaign service CLI (DESIGN.md §13, README "Running
// campaigns as a service").  Runs a campaign spec across worker
// subprocesses with checkpointed resume: kill it (or its workers) at any
// point, re-run the same command, and the finished report is
// byte-identical to an uninterrupted single-process run.
//
//   campaign_service --spec job.json            # run / resume from a spec file
//   campaign_service --kind tolerance --samples 96 --shards 4
//       --checkpoint-dir /tmp/tol --report /tmp/tol/report.txt
//
// The same binary doubles as the shard worker: the coordinator re-execs
// it with --lcosc-shard flags, which maybe_run_shard() intercepts first
// thing in main().
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/supervisor.h"

using namespace lcosc;
using namespace lcosc::service;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--spec FILE] [--kind tolerance|fmea|internal_fmea]\n"
               "          [--samples N] [--seed N] [--shards N] [--workers-per-shard N]\n"
               "          [--max-restarts N] [--shard-timeout-ms MS]\n"
               "          --checkpoint-dir DIR [--report FILE] [--quiet]\n"
               "\nFlags override values from --spec.  Re-running with the same\n"
               "checkpoint directory resumes: finished cases are never recomputed.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode: the coordinator re-execs this binary with --lcosc-shard.
  if (const auto shard_exit = maybe_run_shard(argc, argv)) return *shard_exit;

  CampaignSpec spec;
  ServiceOptions options;
  options.verbose = true;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw ConfigError(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--spec") {
        std::ifstream in(value());
        if (!in) throw ConfigError("cannot read spec file");
        std::stringstream buffer;
        buffer << in.rdbuf();
        spec = parse_campaign_spec(buffer.str());
      } else if (arg == "--kind") {
        const std::string kind = value();
        if (kind == "tolerance") {
          spec.kind = CampaignKind::Tolerance;
        } else if (kind == "fmea") {
          spec.kind = CampaignKind::ExternalFmea;
        } else if (kind == "internal_fmea") {
          spec.kind = CampaignKind::InternalFmea;
        } else {
          throw ConfigError("unknown campaign kind " + kind);
        }
      } else if (arg == "--samples") {
        spec.samples = std::atoi(value().c_str());
      } else if (arg == "--seed") {
        spec.seed = std::strtoull(value().c_str(), nullptr, 10);
      } else if (arg == "--shards") {
        spec.shards = std::atoi(value().c_str());
      } else if (arg == "--workers-per-shard") {
        spec.workers_per_shard = std::atoi(value().c_str());
      } else if (arg == "--max-restarts") {
        spec.max_restarts = std::atoi(value().c_str());
      } else if (arg == "--shard-timeout-ms") {
        spec.shard_timeout_ms = std::atof(value().c_str());
      } else if (arg == "--checkpoint-dir") {
        spec.checkpoint_dir = value();
      } else if (arg == "--report") {
        spec.report_path = value();
      } else if (arg == "--quiet") {
        options.verbose = false;
      } else if (arg == "--help" || arg == "-h") {
        return usage(argv[0]);
      } else {
        std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
        return usage(argv[0]);
      }
    }
    if (spec.checkpoint_dir.empty()) {
      std::fprintf(stderr, "--checkpoint-dir is required\n");
      return usage(argv[0]);
    }

    const ServiceResult result = run_campaign_service(spec, options);

    std::cout << result.report;
    std::cout << "\n--- service summary ---\n";
    std::cout << "campaign       : " << to_string(spec.kind) << " (" << result.cases_total
              << " cases, " << spec.shards << " shard" << (spec.shards == 1 ? "" : "s")
              << ")\n";
    std::cout << "resumed        : " << result.cases_resumed << " cases from checkpoints\n";
    for (const ShardStatus& shard : result.shards) {
      std::cout << "shard " << shard.index << "        : cases [" << shard.range.begin << ", "
                << shard.range.end << "), " << shard.cases_computed << " computed, "
                << shard.spawns << " spawn(s), " << shard.restarts << " restart(s), "
                << shard.timeouts << " timeout(s), "
                << (shard.ok ? "ok" : "FAILED PERMANENTLY") << "\n";
    }
    if (result.degraded()) {
      std::cout << "DEGRADED       : " << result.cases_failed
                << " case(s) reported as SimulationError rows\n";
      return 1;
    }
    std::cout << "status         : complete\n";
    if (!spec.report_path.empty()) {
      std::cout << "report written : " << spec.report_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_service: %s\n", e.what());
    return 2;
  }
}
