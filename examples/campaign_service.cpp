// Sharded campaign service CLI (DESIGN.md §13–14, README "Running
// campaigns as a service" / "Submitting jobs to the queue").
//
// Direct mode (no subcommand) runs one spec to completion with
// checkpointed resume, exactly as before:
//
//   campaign_service --spec job.json            # run / resume from a spec file
//   campaign_service --kind tolerance --samples 96 --shards 4
//       --checkpoint-dir /tmp/tol --report /tmp/tol/report.txt
//
// Queue mode layers a persistent multi-job queue on the same supervisor:
//
//   campaign_service submit --queue Q --kind tolerance --samples 96 --shards 2
//   campaign_service submit --queue Q --spec tmpl.json --sweep seed=1,2,3 --priority 5
//   campaign_service serve  --queue Q --shard-slots 4      # run until drained
//   campaign_service list   --queue Q
//   campaign_service status --queue Q 000001
//   campaign_service result --queue Q 000001 > report.txt
//   campaign_service cancel --queue Q 000002
//
// Observability (README "Watching the fleet"):
//
//   campaign_service top     --queue Q [--interval-ms 1000] [--once]
//   campaign_service inspect --queue Q 000001
//   campaign_service inspect --dir /tmp/tol        # direct checkpoint dir
//
// The same binary doubles as the shard worker: the coordinator re-execs
// it with --lcosc-shard flags, which maybe_run_shard() intercepts first
// thing in main().
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli_parse.h"
#include "service/flat_json.h"
#include "service/queue.h"
#include "service/supervisor.h"
#include "service/telemetry_merge.h"

using namespace lcosc;
using namespace lcosc::service;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--spec FILE] [--kind tolerance|fmea|internal_fmea]\n"
      "          [--samples N] [--seed N] [--shards N] [--workers-per-shard N]\n"
      "          [--max-restarts N] [--shard-timeout-ms MS] [--chunk-lanes N]\n"
      "          --checkpoint-dir DIR [--report FILE] [--quiet]\n"
      "   or: %s submit --queue DIR [spec flags] [--priority N] [--name S]\n"
      "          [--sweep KEY=V1,V2,...]\n"
      "   or: %s serve --queue DIR [--shard-slots N] [--max-parallel-jobs N]\n"
      "          [--follow] [--quiet]\n"
      "   or: %s list|status|result|cancel --queue DIR [JOB]\n"
      "   or: %s top --queue DIR [--interval-ms MS] [--once]\n"
      "   or: %s inspect --queue DIR JOB | inspect --dir CHECKPOINT_DIR\n"
      "\nFlags override values from --spec.  Re-running with the same\n"
      "checkpoint directory resumes: finished cases are never recomputed.\n",
      argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

// Spec flags shared by direct mode and `submit`; returns false when the
// flag is not a spec flag (so each mode layers its own flags on top).
bool handle_spec_flag(CampaignSpec& spec, const std::string& arg,
                      const std::function<std::string()>& value) {
  if (arg == "--spec") {
    std::ifstream in(value());
    if (!in) throw ConfigError("cannot read spec file");
    std::stringstream buffer;
    buffer << in.rdbuf();
    spec = parse_campaign_spec(buffer.str());
  } else if (arg == "--kind") {
    spec.kind = parse_campaign_kind(value());
  } else if (arg == "--samples") {
    spec.samples = parse_cli_int(arg, value());
  } else if (arg == "--seed") {
    spec.seed = parse_cli_u64(arg, value());
  } else if (arg == "--shards") {
    spec.shards = parse_cli_int(arg, value());
  } else if (arg == "--workers-per-shard") {
    spec.workers_per_shard = parse_cli_int(arg, value());
  } else if (arg == "--max-restarts") {
    spec.max_restarts = parse_cli_int(arg, value());
  } else if (arg == "--chunk-lanes") {
    spec.chunk_lanes = parse_cli_int(arg, value());
  } else if (arg == "--shard-timeout-ms") {
    spec.shard_timeout_ms = parse_cli_double(arg, value());
  } else if (arg == "--checkpoint-dir") {
    spec.checkpoint_dir = value();
  } else if (arg == "--report") {
    spec.report_path = value();
  } else {
    return false;
  }
  return true;
}

void print_progress(const JobQueue& queue, const JobRecord& job) {
  try {
    const JobProgress progress = queue.progress(job);
    std::cout << "progress : " << progress.cases_done << "/" << progress.cases_total
              << " cases checkpointed\n";
    for (const JobProgress::Shard& shard : progress.shards) {
      std::cout << "shard " << shard.index << "  : [" << shard.range.begin << ", "
                << shard.range.end << ") " << shard.done << "/" << shard.range.size()
                << " done\n";
    }
  } catch (const std::exception& e) {
    std::cout << "progress : unavailable (" << e.what() << ")\n";
  }
}

int cmd_submit(JobQueue& queue, CampaignSpec& spec, int priority, const std::string& name,
               const std::string& sweep) {
  std::vector<JobRecord> jobs;
  if (sweep.empty()) {
    jobs.push_back(queue.submit(spec, priority, name));
  } else {
    const std::size_t eq = sweep.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= sweep.size()) {
      throw ConfigError("--sweep wants KEY=V1,V2,... , got '" + sweep + "'");
    }
    const std::string key = sweep.substr(0, eq);
    std::vector<std::string> values;
    std::stringstream list(sweep.substr(eq + 1));
    std::string value;
    while (std::getline(list, value, ',')) {
      if (!value.empty()) values.push_back(value);
    }
    if (values.empty()) throw ConfigError("--sweep has no values");
    jobs = queue.submit_sweep(spec, key, values, priority, name);
  }
  for (const JobRecord& job : jobs) {
    std::cout << "submitted " << job.id << " (priority " << job.priority << ")\n";
  }
  return 0;
}

int cmd_list(const JobQueue& queue) {
  const std::vector<JobRecord> jobs = queue.list();
  if (jobs.empty()) {
    std::cout << "queue is empty\n";
    return 0;
  }
  std::printf("%-24s %-10s %8s %5s %6s  %s\n", "JOB", "STATE", "PRIORITY", "RUNS",
              "CANCEL", "ERROR");
  for (const JobRecord& job : jobs) {
    std::printf("%-24s %-10s %8d %5d %6s  %s\n", job.id.c_str(),
                to_string(job.state).c_str(), job.priority, job.runs,
                job.cancel_requested ? "yes" : "", job.error.c_str());
  }
  return 0;
}

int cmd_status(const JobQueue& queue, const std::string& id) {
  const std::optional<JobRecord> job = queue.find(id);
  if (!job) {
    std::fprintf(stderr, "no job '%s'\n", id.c_str());
    return 1;
  }
  std::cout << "job      : " << job->id << "\n"
            << "state    : " << to_string(job->state)
            << (job->cancel_requested && !job->terminal() ? " (cancel requested)" : "")
            << "\n"
            << "priority : " << job->priority << "\n"
            << "runs     : " << job->runs << "\n";
  if (job->run_order >= 0) std::cout << "run order: " << job->run_order << "\n";
  if (!job->error.empty()) std::cout << "error    : " << job->error << "\n";
  print_progress(queue, *job);
  std::ifstream stream(job->progress_path);
  if (stream) {
    std::cout << "last coordinator snapshot (progress.json):\n" << stream.rdbuf();
  }
  return 0;
}

int cmd_result(const JobQueue& queue, const std::string& id) {
  const std::optional<JobRecord> job = queue.find(id);
  if (!job) {
    std::fprintf(stderr, "no job '%s'\n", id.c_str());
    return 1;
  }
  const std::optional<std::string> report = queue.report(*job);
  if (!report) {
    std::fprintf(stderr, "job %s has no report yet (state %s)\n", job->id.c_str(),
                 to_string(job->state).c_str());
    return 1;
  }
  std::cout << *report;
  return 0;
}

int cmd_cancel(JobQueue& queue, const std::string& id) {
  if (!queue.cancel(id)) {
    std::fprintf(stderr, "cannot cancel '%s' (unknown or already terminal)\n", id.c_str());
    return 1;
  }
  std::cout << "cancel requested for " << id << "\n";
  return 0;
}

int cmd_serve(JobQueue& queue, const QueueCoordinatorOptions& options) {
  const QueueCoordinatorResult result = run_queue_coordinator(queue, options);
  std::cout << "queue drained: " << result.jobs_done << " done, " << result.jobs_failed
            << " failed, " << result.jobs_cancelled << " cancelled\n";
  return result.jobs_failed > 0 ? 1 : 0;
}

// --- top / inspect ---------------------------------------------------------

// progress.json / forensics rows are flat objects; collect key -> raw value.
bool read_flat_object(const std::string& text, std::map<std::string, std::string>& out) {
  try {
    FlatJsonParser(text).context("telemetry").parse_object(
        [&](const std::string& key, const std::string& value, bool) { out[key] = value; });
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool read_flat_file(const std::string& path, std::map<std::string, std::string>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return read_flat_object(buffer.str(), out);
}

long long flat_ll(const std::map<std::string, std::string>& obj, const std::string& key,
                  long long fallback) {
  const auto it = obj.find(key);
  if (it == obj.end()) return fallback;
  try {
    return static_cast<long long>(json_to_number(key, it->second));
  } catch (const std::exception&) {
    return fallback;
  }
}

// One poll's view of a job's committed-case count.  The CASES/S column
// averages over a sliding window of these, never a single poll-to-poll
// delta: a chunked shard drain commits up to chunk_lanes cases in one
// burst, so adjacent-poll deltas whipsaw between 0 and hundreds while
// the true throughput is steady.
struct TopSample {
  long long cases_done = 0;
  std::chrono::steady_clock::time_point at{};
};
constexpr double kTopRateWindowSeconds = 10.0;

int cmd_top(const JobQueue& queue, int interval_ms, bool once) {
  std::map<std::string, std::deque<TopSample>> history;
  const bool live = !once;
  while (true) {
    const auto poll_at = std::chrono::steady_clock::now();
    const long long now_unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                      std::chrono::system_clock::now().time_since_epoch())
                                      .count();
    std::vector<JobRecord> jobs = queue.list();

    std::ostringstream screen;
    int slots_in_use = -1;
    int slots_capacity = -1;
    long long freshest_heartbeat = -1;

    screen << "queue: " << queue.root() << "  (" << jobs.size() << " job"
           << (jobs.size() == 1 ? "" : "s") << ")\n\n";
    char line[256];
    std::snprintf(line, sizeof(line), "%-24s %-10s %12s %9s %9s %9s %10s %9s\n", "JOB",
                  "STATE", "DONE/TOTAL", "SPAWNS", "RESTARTS", "TIMEOUTS", "CASES/S",
                  "HEARTBEAT");
    screen << line;

    std::vector<std::string> shard_blocks;
    for (const JobRecord& job : jobs) {
      std::map<std::string, std::string> progress;
      const bool have_progress = read_flat_file(job.progress_path, progress);

      long long total = flat_ll(progress, "cases_total", -1);
      long long done = flat_ll(progress, "cases_done", -1);
      if (total < 0 || done < 0) {
        // No coordinator snapshot yet: fall back to the durable
        // checkpoint scan (works with no coordinator alive at all).
        try {
          const JobProgress durable = queue.progress(job);
          total = static_cast<long long>(durable.cases_total);
          done = static_cast<long long>(durable.cases_done);
        } catch (const std::exception&) {
        }
      }

      long long spawns = 0;
      long long restarts = 0;
      long long timeouts = 0;
      const long long shards = flat_ll(progress, "shards", 0);
      std::ostringstream block;
      for (long long s = 0; s < shards; ++s) {
        const std::string prefix = "shard_" + std::to_string(s) + "_";
        spawns += flat_ll(progress, prefix + "spawns", 0);
        restarts += flat_ll(progress, prefix + "restarts", 0);
        timeouts += flat_ll(progress, prefix + "timeouts", 0);
        if (job.state == JobState::Running) {
          const long long begin = flat_ll(progress, prefix + "begin", 0);
          const long long end = flat_ll(progress, prefix + "end", 0);
          const long long shard_done = flat_ll(progress, prefix + "done", 0);
          block << "    shard " << s << "  [" << begin << ", " << end << ")  " << shard_done
                << "/" << (end - begin) << " done  spawns="
                << flat_ll(progress, prefix + "spawns", 0)
                << " restarts=" << flat_ll(progress, prefix + "restarts", 0)
                << " timeouts=" << flat_ll(progress, prefix + "timeouts", 0) << "\n";
        }
      }
      if (block.tellp() > 0) shard_blocks.push_back(job.id + "\n" + block.str());

      // Fleet slot utilization: every running job's snapshot carries the
      // shared pool's state; take the freshest heartbeat's view.
      const long long heartbeat = flat_ll(progress, "heartbeat_unix_ms", -1);
      if (heartbeat > freshest_heartbeat && flat_ll(progress, "fleet_slots_capacity", -1) >= 0) {
        freshest_heartbeat = heartbeat;
        slots_in_use = static_cast<int>(flat_ll(progress, "fleet_slots_in_use", -1));
        slots_capacity = static_cast<int>(flat_ll(progress, "fleet_slots_capacity", -1));
      }

      // Throughput over the trailing sample window (burst-tolerant).
      std::string rate = "-";
      std::deque<TopSample>& window = history[job.id];
      if (done >= 0) {
        window.push_back({done, poll_at});
        // Trim samples whose removal still leaves the full window span.
        while (window.size() > 2 &&
               std::chrono::duration<double>(poll_at - window[1].at).count() >=
                   kTopRateWindowSeconds) {
          window.pop_front();
        }
        const TopSample& oldest = window.front();
        const double dt = std::chrono::duration<double>(poll_at - oldest.at).count();
        if (dt > 0.0 && done >= oldest.cases_done) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.1f",
                        static_cast<double>(done - oldest.cases_done) / dt);
          rate = buf;
        }
      }

      std::string beat = "-";
      if (heartbeat > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1fs ago",
                      static_cast<double>(now_unix_ms - heartbeat) * 1e-3);
        beat = buf;
      }

      std::string done_total = "-";
      if (total >= 0) done_total = std::to_string(done) + "/" + std::to_string(total);
      std::snprintf(line, sizeof(line), "%-24s %-10s %12s %9lld %9lld %9lld %10s %9s\n",
                    job.id.c_str(), to_string(job.state).c_str(), done_total.c_str(), spawns,
                    restarts, timeouts, rate.c_str(), beat.c_str());
      screen << line;
      (void)have_progress;
    }

    screen << "\nfleet slots: ";
    if (slots_capacity > 0) {
      screen << slots_in_use << "/" << slots_capacity << " in use";
    } else if (slots_capacity == 0) {
      screen << slots_in_use << " in use (unlimited)";
    } else {
      screen << "unknown (no running coordinator snapshot)";
    }
    screen << "\n";
    for (const std::string& block : shard_blocks) screen << "\n" << block;

    if (live) std::fputs("\033[H\033[2J", stdout);  // home + clear
    std::fputs(screen.str().c_str(), stdout);
    std::fflush(stdout);
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

// Pretty-print one finished job's summary.json and forensics.jsonl.
int inspect_checkpoint_dir(const std::string& checkpoint_dir) {
  const std::string tdir = telemetry_dir(checkpoint_dir);
  bool printed = false;

  std::ifstream summary(tdir + "/summary.json");
  if (summary) {
    std::cout << "--- summary (" << tdir << "/summary.json) ---\n" << summary.rdbuf() << "\n";
    printed = true;
  }

  std::ifstream forensics(forensics_path(checkpoint_dir));
  if (forensics) {
    std::cout << "--- forensics (" << forensics_path(checkpoint_dir) << ") ---\n";
    std::printf("%-14s %5s %7s %-11s %5s %-8s %8s %8s %9s %9s\n", "TS_UNIX_MS", "SHARD",
                "ATTEMPT", "EVENT", "EXIT", "SIGNAL", "WALL_S", "CPU_S", "RSS_KB",
                "LAST_CKPT");
    std::vector<std::pair<std::string, std::string>> tails;  // (who, tail)
    std::string row_text;
    while (std::getline(forensics, row_text)) {
      if (row_text.empty()) continue;
      std::map<std::string, std::string> row;
      if (!read_flat_object(row_text, row)) continue;
      const auto str = [&](const std::string& key) {
        const auto it = row.find(key);
        return it == row.end() ? std::string() : it->second;
      };
      const auto num = [&](const std::string& key) {
        try {
          return json_to_number(key, str(key));
        } catch (const std::exception&) {
          return 0.0;
        }
      };
      const double cpu = num("cpu_user_s") + num("cpu_sys_s");
      const double wall = num("wall_s");
      std::printf("%-14lld %5lld %7lld %-11s %5lld %-8s %8.2f %8.2f %9lld %9lld\n",
                  flat_ll(row, "ts_unix_ms", 0), flat_ll(row, "shard", -1),
                  flat_ll(row, "attempt", 0), str("event").c_str(),
                  flat_ll(row, "exit_code", 0), str("signal_name").c_str(), wall, cpu,
                  flat_ll(row, "max_rss_kb", 0), flat_ll(row, "last_checkpoint_index", -1));
      const std::string tail = str("stderr_tail");
      if (!tail.empty()) {
        tails.emplace_back("shard " + str("shard") + " attempt " + str("attempt") + " (" +
                               str("event") + ")",
                           tail);
      }
    }
    for (const auto& [who, tail] : tails) {
      std::cout << "\nstderr tail of " << who << ":\n" << tail;
      if (tail.back() != '\n') std::cout << "\n";
    }
    printed = true;
  }

  if (!printed) {
    std::fprintf(stderr,
                 "no telemetry under %s\n(run the campaign with LCOSC_METRICS=1 and/or "
                 "LCOSC_TRACE=1 to produce summary.json; forensics.jsonl appears once a "
                 "worker has exited)\n",
                 tdir.c_str());
    return 1;
  }
  return 0;
}

int cmd_inspect(const JobQueue& queue, const std::string& id) {
  const std::optional<JobRecord> job = queue.find(id);
  if (!job) {
    std::fprintf(stderr, "no job '%s'\n", id.c_str());
    return 1;
  }
  std::cout << "job      : " << job->id << "\n"
            << "state    : " << to_string(job->state) << "\n";
  return inspect_checkpoint_dir(job->checkpoint_dir);
}

int run_queue_command(int argc, char** argv) {
  const std::string command = argv[1];
  CampaignSpec spec;
  QueueCoordinatorOptions serve_options;
  serve_options.verbose = true;
  std::string queue_root;
  std::string job_id;
  std::string name;
  std::string sweep;
  std::string inspect_dir;
  int priority = 0;
  int top_interval_ms = 1000;
  bool top_once = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--queue") {
      queue_root = value();
    } else if (arg == "--quiet") {
      serve_options.verbose = false;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (command == "submit" && handle_spec_flag(spec, arg, value)) {
      // spec flag consumed
    } else if (command == "submit" && arg == "--priority") {
      priority = parse_cli_int(arg, value());
    } else if (command == "submit" && arg == "--name") {
      name = value();
    } else if (command == "submit" && arg == "--sweep") {
      sweep = value();
    } else if (command == "serve" && arg == "--shard-slots") {
      serve_options.shard_slots = parse_cli_int(arg, value());
    } else if (command == "serve" && arg == "--max-parallel-jobs") {
      serve_options.max_parallel_jobs = parse_cli_int(arg, value());
    } else if (command == "serve" && arg == "--poll-ms") {
      serve_options.poll_ms = parse_cli_int(arg, value());
    } else if (command == "serve" && arg == "--follow") {
      serve_options.drain_and_exit = false;
    } else if (command == "top" && arg == "--interval-ms") {
      top_interval_ms = parse_cli_int(arg, value());
    } else if (command == "top" && arg == "--once") {
      top_once = true;
    } else if (command == "inspect" && arg == "--dir") {
      inspect_dir = value();
    } else if (arg[0] != '-' && job_id.empty()) {
      job_id = arg;
    } else {
      std::fprintf(stderr, "unknown flag %s for '%s'\n", arg.c_str(), command.c_str());
      return usage(argv[0]);
    }
  }
  // `inspect --dir` works directly on a checkpoint directory, no queue.
  if (command == "inspect" && !inspect_dir.empty()) {
    return inspect_checkpoint_dir(inspect_dir);
  }
  if (queue_root.empty()) {
    std::fprintf(stderr, "--queue is required\n");
    return usage(argv[0]);
  }

  JobQueue queue(queue_root);
  if (command == "submit") return cmd_submit(queue, spec, priority, name, sweep);
  if (command == "list") return cmd_list(queue);
  if (command == "serve") return cmd_serve(queue, serve_options);
  if (command == "top") return cmd_top(queue, top_interval_ms, top_once);
  if (command == "inspect") {
    if (job_id.empty()) {
      std::fprintf(stderr, "'inspect' needs a job id (or --dir CHECKPOINT_DIR)\n");
      return usage(argv[0]);
    }
    return cmd_inspect(queue, job_id);
  }
  if (command == "status" || command == "result" || command == "cancel") {
    if (job_id.empty()) {
      std::fprintf(stderr, "'%s' needs a job id\n", command.c_str());
      return usage(argv[0]);
    }
    if (command == "status") return cmd_status(queue, job_id);
    if (command == "result") return cmd_result(queue, job_id);
    return cmd_cancel(queue, job_id);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return usage(argv[0]);
}

int run_direct(int argc, char** argv) {
  CampaignSpec spec;
  ServiceOptions options;
  options.verbose = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " needs a value");
      return argv[++i];
    };
    if (handle_spec_flag(spec, arg, value)) {
      continue;
    }
    if (arg == "--quiet") {
      options.verbose = false;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (spec.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--checkpoint-dir is required\n");
    return usage(argv[0]);
  }

  const ServiceResult result = run_campaign_service(spec, options);

  std::cout << result.report;
  std::cout << "\n--- service summary ---\n";
  std::cout << "campaign       : " << to_string(spec.kind) << " (" << result.cases_total
            << " cases, " << spec.shards << " shard" << (spec.shards == 1 ? "" : "s")
            << ")\n";
  std::cout << "resumed        : " << result.cases_resumed << " cases from checkpoints\n";
  for (const ShardStatus& shard : result.shards) {
    std::cout << "shard " << shard.index << "        : cases [" << shard.range.begin << ", "
              << shard.range.end << "), " << shard.cases_computed << " computed, "
              << shard.spawns << " spawn(s), " << shard.restarts << " restart(s), "
              << shard.timeouts << " timeout(s), "
              << (shard.ok ? "ok" : "FAILED PERMANENTLY") << "\n";
  }
  if (result.degraded()) {
    std::cout << "DEGRADED       : " << result.cases_failed
              << " case(s) reported as SimulationError rows\n";
    return 1;
  }
  std::cout << "status         : complete\n";
  if (!spec.report_path.empty()) {
    std::cout << "report written : " << spec.report_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode: the coordinator re-execs this binary with --lcosc-shard.
  if (const auto shard_exit = maybe_run_shard(argc, argv)) return *shard_exit;

  try {
    // A first argument that is not a flag selects queue mode.
    if (argc > 1 && argv[1][0] != '-') return run_queue_command(argc, argv);
    return run_direct(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_service: %s\n", e.what());
    return 2;
  }
}
