// Sharded campaign service CLI (DESIGN.md §13–14, README "Running
// campaigns as a service" / "Submitting jobs to the queue").
//
// Direct mode (no subcommand) runs one spec to completion with
// checkpointed resume, exactly as before:
//
//   campaign_service --spec job.json            # run / resume from a spec file
//   campaign_service --kind tolerance --samples 96 --shards 4
//       --checkpoint-dir /tmp/tol --report /tmp/tol/report.txt
//
// Queue mode layers a persistent multi-job queue on the same supervisor:
//
//   campaign_service submit --queue Q --kind tolerance --samples 96 --shards 2
//   campaign_service submit --queue Q --spec tmpl.json --sweep seed=1,2,3 --priority 5
//   campaign_service serve  --queue Q --shard-slots 4      # run until drained
//   campaign_service list   --queue Q
//   campaign_service status --queue Q 000001
//   campaign_service result --queue Q 000001 > report.txt
//   campaign_service cancel --queue Q 000002
//
// The same binary doubles as the shard worker: the coordinator re-execs
// it with --lcosc-shard flags, which maybe_run_shard() intercepts first
// thing in main().
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli_parse.h"
#include "service/queue.h"
#include "service/supervisor.h"

using namespace lcosc;
using namespace lcosc::service;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--spec FILE] [--kind tolerance|fmea|internal_fmea]\n"
      "          [--samples N] [--seed N] [--shards N] [--workers-per-shard N]\n"
      "          [--max-restarts N] [--shard-timeout-ms MS]\n"
      "          --checkpoint-dir DIR [--report FILE] [--quiet]\n"
      "   or: %s submit --queue DIR [spec flags] [--priority N] [--name S]\n"
      "          [--sweep KEY=V1,V2,...]\n"
      "   or: %s serve --queue DIR [--shard-slots N] [--max-parallel-jobs N]\n"
      "          [--follow] [--quiet]\n"
      "   or: %s list|status|result|cancel --queue DIR [JOB]\n"
      "\nFlags override values from --spec.  Re-running with the same\n"
      "checkpoint directory resumes: finished cases are never recomputed.\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

// Spec flags shared by direct mode and `submit`; returns false when the
// flag is not a spec flag (so each mode layers its own flags on top).
bool handle_spec_flag(CampaignSpec& spec, const std::string& arg,
                      const std::function<std::string()>& value) {
  if (arg == "--spec") {
    std::ifstream in(value());
    if (!in) throw ConfigError("cannot read spec file");
    std::stringstream buffer;
    buffer << in.rdbuf();
    spec = parse_campaign_spec(buffer.str());
  } else if (arg == "--kind") {
    spec.kind = parse_campaign_kind(value());
  } else if (arg == "--samples") {
    spec.samples = parse_cli_int(arg, value());
  } else if (arg == "--seed") {
    spec.seed = parse_cli_u64(arg, value());
  } else if (arg == "--shards") {
    spec.shards = parse_cli_int(arg, value());
  } else if (arg == "--workers-per-shard") {
    spec.workers_per_shard = parse_cli_int(arg, value());
  } else if (arg == "--max-restarts") {
    spec.max_restarts = parse_cli_int(arg, value());
  } else if (arg == "--shard-timeout-ms") {
    spec.shard_timeout_ms = parse_cli_double(arg, value());
  } else if (arg == "--checkpoint-dir") {
    spec.checkpoint_dir = value();
  } else if (arg == "--report") {
    spec.report_path = value();
  } else {
    return false;
  }
  return true;
}

void print_progress(const JobQueue& queue, const JobRecord& job) {
  try {
    const JobProgress progress = queue.progress(job);
    std::cout << "progress : " << progress.cases_done << "/" << progress.cases_total
              << " cases checkpointed\n";
    for (const JobProgress::Shard& shard : progress.shards) {
      std::cout << "shard " << shard.index << "  : [" << shard.range.begin << ", "
                << shard.range.end << ") " << shard.done << "/" << shard.range.size()
                << " done\n";
    }
  } catch (const std::exception& e) {
    std::cout << "progress : unavailable (" << e.what() << ")\n";
  }
}

int cmd_submit(JobQueue& queue, CampaignSpec& spec, int priority, const std::string& name,
               const std::string& sweep) {
  std::vector<JobRecord> jobs;
  if (sweep.empty()) {
    jobs.push_back(queue.submit(spec, priority, name));
  } else {
    const std::size_t eq = sweep.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= sweep.size()) {
      throw ConfigError("--sweep wants KEY=V1,V2,... , got '" + sweep + "'");
    }
    const std::string key = sweep.substr(0, eq);
    std::vector<std::string> values;
    std::stringstream list(sweep.substr(eq + 1));
    std::string value;
    while (std::getline(list, value, ',')) {
      if (!value.empty()) values.push_back(value);
    }
    if (values.empty()) throw ConfigError("--sweep has no values");
    jobs = queue.submit_sweep(spec, key, values, priority, name);
  }
  for (const JobRecord& job : jobs) {
    std::cout << "submitted " << job.id << " (priority " << job.priority << ")\n";
  }
  return 0;
}

int cmd_list(const JobQueue& queue) {
  const std::vector<JobRecord> jobs = queue.list();
  if (jobs.empty()) {
    std::cout << "queue is empty\n";
    return 0;
  }
  std::printf("%-24s %-10s %8s %5s %6s  %s\n", "JOB", "STATE", "PRIORITY", "RUNS",
              "CANCEL", "ERROR");
  for (const JobRecord& job : jobs) {
    std::printf("%-24s %-10s %8d %5d %6s  %s\n", job.id.c_str(),
                to_string(job.state).c_str(), job.priority, job.runs,
                job.cancel_requested ? "yes" : "", job.error.c_str());
  }
  return 0;
}

int cmd_status(const JobQueue& queue, const std::string& id) {
  const std::optional<JobRecord> job = queue.find(id);
  if (!job) {
    std::fprintf(stderr, "no job '%s'\n", id.c_str());
    return 1;
  }
  std::cout << "job      : " << job->id << "\n"
            << "state    : " << to_string(job->state)
            << (job->cancel_requested && !job->terminal() ? " (cancel requested)" : "")
            << "\n"
            << "priority : " << job->priority << "\n"
            << "runs     : " << job->runs << "\n";
  if (job->run_order >= 0) std::cout << "run order: " << job->run_order << "\n";
  if (!job->error.empty()) std::cout << "error    : " << job->error << "\n";
  print_progress(queue, *job);
  std::ifstream stream(job->progress_path);
  if (stream) {
    std::cout << "last coordinator snapshot (progress.json):\n" << stream.rdbuf();
  }
  return 0;
}

int cmd_result(const JobQueue& queue, const std::string& id) {
  const std::optional<JobRecord> job = queue.find(id);
  if (!job) {
    std::fprintf(stderr, "no job '%s'\n", id.c_str());
    return 1;
  }
  const std::optional<std::string> report = queue.report(*job);
  if (!report) {
    std::fprintf(stderr, "job %s has no report yet (state %s)\n", job->id.c_str(),
                 to_string(job->state).c_str());
    return 1;
  }
  std::cout << *report;
  return 0;
}

int cmd_cancel(JobQueue& queue, const std::string& id) {
  if (!queue.cancel(id)) {
    std::fprintf(stderr, "cannot cancel '%s' (unknown or already terminal)\n", id.c_str());
    return 1;
  }
  std::cout << "cancel requested for " << id << "\n";
  return 0;
}

int cmd_serve(JobQueue& queue, const QueueCoordinatorOptions& options) {
  const QueueCoordinatorResult result = run_queue_coordinator(queue, options);
  std::cout << "queue drained: " << result.jobs_done << " done, " << result.jobs_failed
            << " failed, " << result.jobs_cancelled << " cancelled\n";
  return result.jobs_failed > 0 ? 1 : 0;
}

int run_queue_command(int argc, char** argv) {
  const std::string command = argv[1];
  CampaignSpec spec;
  QueueCoordinatorOptions serve_options;
  serve_options.verbose = true;
  std::string queue_root;
  std::string job_id;
  std::string name;
  std::string sweep;
  int priority = 0;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--queue") {
      queue_root = value();
    } else if (arg == "--quiet") {
      serve_options.verbose = false;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (command == "submit" && handle_spec_flag(spec, arg, value)) {
      // spec flag consumed
    } else if (command == "submit" && arg == "--priority") {
      priority = parse_cli_int(arg, value());
    } else if (command == "submit" && arg == "--name") {
      name = value();
    } else if (command == "submit" && arg == "--sweep") {
      sweep = value();
    } else if (command == "serve" && arg == "--shard-slots") {
      serve_options.shard_slots = parse_cli_int(arg, value());
    } else if (command == "serve" && arg == "--max-parallel-jobs") {
      serve_options.max_parallel_jobs = parse_cli_int(arg, value());
    } else if (command == "serve" && arg == "--poll-ms") {
      serve_options.poll_ms = parse_cli_int(arg, value());
    } else if (command == "serve" && arg == "--follow") {
      serve_options.drain_and_exit = false;
    } else if (arg[0] != '-' && job_id.empty()) {
      job_id = arg;
    } else {
      std::fprintf(stderr, "unknown flag %s for '%s'\n", arg.c_str(), command.c_str());
      return usage(argv[0]);
    }
  }
  if (queue_root.empty()) {
    std::fprintf(stderr, "--queue is required\n");
    return usage(argv[0]);
  }

  JobQueue queue(queue_root);
  if (command == "submit") return cmd_submit(queue, spec, priority, name, sweep);
  if (command == "list") return cmd_list(queue);
  if (command == "serve") return cmd_serve(queue, serve_options);
  if (command == "status" || command == "result" || command == "cancel") {
    if (job_id.empty()) {
      std::fprintf(stderr, "'%s' needs a job id\n", command.c_str());
      return usage(argv[0]);
    }
    if (command == "status") return cmd_status(queue, job_id);
    if (command == "result") return cmd_result(queue, job_id);
    return cmd_cancel(queue, job_id);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return usage(argv[0]);
}

int run_direct(int argc, char** argv) {
  CampaignSpec spec;
  ServiceOptions options;
  options.verbose = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " needs a value");
      return argv[++i];
    };
    if (handle_spec_flag(spec, arg, value)) {
      continue;
    }
    if (arg == "--quiet") {
      options.verbose = false;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (spec.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--checkpoint-dir is required\n");
    return usage(argv[0]);
  }

  const ServiceResult result = run_campaign_service(spec, options);

  std::cout << result.report;
  std::cout << "\n--- service summary ---\n";
  std::cout << "campaign       : " << to_string(spec.kind) << " (" << result.cases_total
            << " cases, " << spec.shards << " shard" << (spec.shards == 1 ? "" : "s")
            << ")\n";
  std::cout << "resumed        : " << result.cases_resumed << " cases from checkpoints\n";
  for (const ShardStatus& shard : result.shards) {
    std::cout << "shard " << shard.index << "        : cases [" << shard.range.begin << ", "
              << shard.range.end << "), " << shard.cases_computed << " computed, "
              << shard.spawns << " spawn(s), " << shard.restarts << " restart(s), "
              << shard.timeouts << " timeout(s), "
              << (shard.ok ? "ok" : "FAILED PERMANENTLY") << "\n";
  }
  if (result.degraded()) {
    std::cout << "DEGRADED       : " << result.cases_failed
              << " case(s) reported as SimulationError rows\n";
    return 1;
  }
  std::cout << "status         : complete\n";
  if (!spec.report_path.empty()) {
    std::cout << "report written : " << spec.report_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode: the coordinator re-execs this binary with --lcosc-shard.
  if (const auto shard_exit = maybe_run_shard(argc, argv)) return *shard_exit;

  try {
    // A first argument that is not a flag selects queue mode.
    if (argc > 1 && argv[1][0] != '-') return run_queue_command(argc, argv);
    return run_direct(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_service: %s\n", e.what());
    return 2;
  }
}
