// Design-space exploration of the regulation loop: how window width,
// tick period and detector filtering trade settling time against steady
// behaviour.  Everything runs on the fast envelope engine, so the whole
// exploration takes a moment -- this is the "what if I changed the
// paper's numbers" playground.
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "system/envelope_simulator.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

namespace {

struct Outcome {
  int settle_ticks = -1;
  int final_code = 0;
  double amplitude = 0.0;
  int steady_changes = 0;
};

Outcome evaluate(double window_width, double tick_period) {
  EnvelopeSimConfig cfg;
  cfg.tank = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.detector.window_width = window_width;
  cfg.regulation.tick_period = tick_period;
  EnvelopeSimulator sim(cfg);
  const EnvelopeRunResult r = sim.run(250.0 * tick_period);

  Outcome out;
  out.settle_ticks = r.settling_tick(2.7 * 0.9, 2.7 * 1.1);
  out.final_code = r.final_code;
  out.amplitude = r.settled_amplitude();
  for (std::size_t i = r.ticks.size() - 40; i < r.ticks.size(); ++i) {
    if (r.ticks[i].code != r.ticks[i - 1].code) ++out.steady_changes;
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Regulation loop tuning playground ===\n\n";
  std::cout << "Reference design (paper): window 10%, tick 1 ms, detector tau 20 us.\n\n";

  std::cout << "Window width (at 1 ms ticks):\n";
  TablePrinter w_table({"window", "settle [ticks]", "final code", "amplitude [V]",
                        "steady code changes / 40 ticks"});
  for (const double w : {0.20, 0.10, 0.0625, 0.04}) {
    const Outcome o = evaluate(w, 1e-3);
    w_table.add_values(percent_format(w),
                       o.settle_ticks >= 0 ? std::to_string(o.settle_ticks) : "never",
                       o.final_code, format_significant(o.amplitude, 3), o.steady_changes);
  }
  w_table.print(std::cout);
  std::cout << "-> wider windows settle the same but tolerate larger steps; below the\n"
               "   6.25% bound some tanks limit-cycle (see bench_ablation_window).\n\n";

  std::cout << "Tick period (at the 10% window):\n";
  TablePrinter t_table({"tick", "settle [ticks]", "settle [ms]", "final code",
                        "amplitude [V]"});
  for (const double tick : {2e-3, 1e-3, 0.5e-3, 0.25e-3, 0.1e-3}) {
    const Outcome o = evaluate(0.10, tick);
    t_table.add_values(si_format(tick, "s"),
                       o.settle_ticks >= 0 ? std::to_string(o.settle_ticks) : "never",
                       o.settle_ticks >= 0 ? format_significant(o.settle_ticks * tick * 1e3, 3)
                                           : "-",
                       o.final_code, format_significant(o.amplitude, 3));
  }
  t_table.print(std::cout);
  std::cout << "-> the settle TICK count is invariant (one code per tick); wall-clock\n"
               "   settling scales with the tick, which is why the paper adds the NVM\n"
               "   preset instead of a faster (EMC-noisier, jitter-prone) tick.\n";
  return 0;
}
