// Redundant dual-oscillator demo (paper Fig. 9 / Section 8): two systems
// with magnetically coupled excitation coils; chip 2 loses its supply at
// 16 ms.  The dead chip's pins present the I-V curve extracted from the
// transistor-level Fig. 11 testbench -- the live system keeps working.
#include <iostream>

#include "common/logging.h"
#include "common/si_format.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "driver/output_stage.h"
#include "system/dual_system.h"

using namespace lcosc;
using namespace lcosc::literals;
using namespace lcosc::system;

int main() {
  // Isolated non-converged sweep points are dropped by extraction; keep
  // the table output clean.
  set_log_level(LogLevel::Error);
  std::cout << "=== Dual redundant system: supply loss on chip 2 ===\n\n";

  std::cout << "extracting the unsupplied Fig. 11 output-stage I-V curve...\n";
  driver::UnsuppliedDriverTestbench tb(driver::OutputStageTopology::BulkSwitched);
  const PwlTable dead_iv = tb.extract_iv(-3.0, 3.0, 41);
  std::cout << "  |I| at the 2.7 Vpp operating extreme: "
            << si_format(std::abs(dead_iv(1.35)), "A") << "\n\n";

  DualSystemConfig cfg;
  cfg.tanks.tank1 = tank::design_tank(4.0_MHz, 40.0, 3.3_uH);
  cfg.tanks.tank2 = cfg.tanks.tank1;
  cfg.tanks.coupling = 0.15;
  cfg.regulation.tick_period = 0.2_ms;

  DualSystem sys(cfg);
  sys.schedule_supply_loss(16e-3, dead_iv);
  std::cout << "running both systems; chip 2 loses Vdd at 16 ms...\n\n";
  const DualRunResult r = sys.run(24e-3);

  TablePrinter table({"window", "live system amplitude [V]", "live code"});
  auto code_at = [&](double t) {
    const std::size_t idx = std::min(
        r.codes1.size() - 1, static_cast<std::size_t>(t / cfg.regulation.tick_period));
    return r.codes1[idx];
  };
  table.add_values("settled, both alive (14-16 ms)",
                   format_significant(r.mean_envelope1(14e-3, 16e-3), 4), code_at(15.9e-3));
  table.add_values("right after supply loss (16-18 ms)",
                   format_significant(r.mean_envelope1(16e-3, 18e-3), 4), code_at(17.9e-3));
  table.add_values("re-settled (21-24 ms)",
                   format_significant(r.mean_envelope1(21e-3, 24e-3), 4), code_at(23.9e-3));
  table.print(std::cout);

  const double before = r.mean_envelope1(14e-3, 16e-3);
  const double after = r.mean_envelope1(21e-3, 24e-3);
  std::cout << "\nlive-system amplitude change: "
            << percent_format((after - before) / before)
            << " -- inside the regulation window: the unsupplied chip does not\n"
            << "load the survivor (paper Section 8, Figs. 17-18).\n"
            << "chip 2 regulation after the event: "
            << (r.codes2.back() < 0 ? "halted (no supply)" : "unexpected") << "\n";
  return 0;
}
