// Interactive-style explorer of the Table-1 control coding: give it a
// code (or none for a guided tour) and it prints the control buses, the
// mirror arithmetic, and where the code sits on the exponential curve.
#include <cstdlib>
#include <iostream>

#include "common/si_format.h"
#include "common/table_printer.h"
#include "dac/control_code.h"
#include "dac/current_mirror.h"
#include "dac/exponential_dac.h"

using namespace lcosc;
using namespace lcosc::dac;

namespace {

void explain(int code) {
  const ControlSignals s = encode_control(code);
  const PwlExponentialDac dac;
  const int segment = segment_of(code);

  std::cout << "code " << code << " (segment " << segment << ", LSBs " << (code & 0xF)
            << "):\n";
  std::cout << "  OscD<2:0> = " << format_bus(s.osc_d, 3).data() << "  -> prescaler x"
            << prescale_factor(s.osc_d) << "\n";
  std::cout << "  OscE<3:0> = " << format_bus(s.osc_e, 4).data() << "  -> fixed mirror "
            << fixed_mirror_units(s.osc_e) << " units, " << active_gm_stages(s.osc_e)
            << " Gm stages active\n";
  std::cout << "  OscF<6:0> = " << format_bus(s.osc_f, 7).data() << "  -> binary section "
            << static_cast<int>(s.osc_f) << " units (LSBs shifted left by "
            << mirror_shift(segment) << ")\n";
  std::cout << "  M = " << prescale_factor(s.osc_d) << " x (" << fixed_mirror_units(s.osc_e)
            << " + " << static_cast<int>(s.osc_f) << ") = " << multiplication_factor(code)
            << " units -> current limit " << si_format(dac.current(code), "A") << "\n";
  if (code >= 1 && code < 127) {
    std::cout << "  relative step to code " << code + 1 << ": "
              << percent_format(dac.relative_step(code)) << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Table-1 control-coding explorer ===\n\n";

  if (argc > 1) {
    const int code = std::atoi(argv[1]);
    if (code < 0 || code > kDacCodeMax) {
      std::cerr << "code must be 0..127\n";
      return 1;
    }
    explain(code);
    return 0;
  }

  std::cout << "(pass a code 0..127 as an argument to inspect it; showing a tour)\n\n";
  for (const int code : {0, 1, 15, 16, 31, 32, 47, 48, 95, 96, 105, 112, 127}) explain(code);

  std::cout << "Mismatch view (one Monte-Carlo silicon sample, seed 2024):\n";
  const CurrentLimitationDac mirror(kDacUnitCurrent, MismatchConfig{}, 2024);
  TablePrinter table({"code", "ideal I", "sample I", "error"});
  for (const int code : {16, 48, 96, 127}) {
    const double ideal = mirror.ideal_current(code);
    const double actual = mirror.output_current(code);
    table.add_values(code, si_format(ideal, "A"), si_format(actual, "A"),
                     percent_format((actual - ideal) / ideal));
  }
  table.print(std::cout);
  return 0;
}
